(* Tests for the experiment harness: the benchmark suite, per-table
   runners (on reduced run counts), and the partition-expansion
   verification — the end-to-end proof that partitioning with functional
   replication preserves circuit function. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Suite                                                              *)
(* ------------------------------------------------------------------ *)

let test_suite_shape () =
  let entries = Experiments.Suite.all () in
  checki "nine circuits" 9 (List.length entries);
  let names = List.map (fun e -> e.Experiments.Suite.name) entries in
  Alcotest.check
    Alcotest.(list string)
    "paper order"
    [ "c1355"; "c5315"; "c6288"; "c7552"; "s5378"; "s9234"; "s13207";
      "s15850"; "s38584" ]
    names;
  List.iter
    (fun e ->
      checkb "display marks substitution" true
        (String.length e.Experiments.Suite.display > 0
        && e.Experiments.Suite.display.[String.length e.Experiments.Suite.display - 1]
           = '*'))
    entries

let test_suite_find () =
  checkb "find known" true (Experiments.Suite.find "c6288" <> None);
  checkb "find unknown" true (Experiments.Suite.find "c17" = None)

let test_suite_memoised () =
  match Experiments.Suite.find "c1355" with
  | None -> Alcotest.fail "c1355 missing"
  | Some e ->
      let a = Lazy.force e.Experiments.Suite.hypergraph in
      let b = Lazy.force e.Experiments.Suite.hypergraph in
      checkb "lazy shares the hypergraph" true (a == b)

let test_suite_sequential_flags () =
  List.iter
    (fun e ->
      let c = Lazy.force e.Experiments.Suite.circuit in
      let has_dff = Netlist.Circuit.num_dff c > 0 in
      checkb
        (e.Experiments.Suite.name ^ " sequential flag")
        e.Experiments.Suite.sequential has_dff)
    (Experiments.Suite.all ())

(* Mapping of each suite entry is functionally sound. (The two largest
   entries are exercised by the bench harness; re-simulating them here
   would dominate the test suite's runtime.) *)
let test_suite_mapping_equivalence () =
  List.iter
    (fun name ->
      match Experiments.Suite.find name with
      | None -> Alcotest.fail ("missing " ^ name)
      | Some e ->
          let c = Lazy.force e.Experiments.Suite.circuit in
          let m = Lazy.force e.Experiments.Suite.mapped in
          checkb (name ^ " mapped equivalently") true
            (Techmap.Mapped.equivalent ~vectors:16 c m))
    [ "c1355"; "c6288"; "s5378"; "s9234" ]

(* ------------------------------------------------------------------ *)
(* Table runners (reduced effort)                                     *)
(* ------------------------------------------------------------------ *)

let small_entry () =
  match Experiments.Suite.find "c1355" with
  | Some e -> e
  | None -> Alcotest.fail "c1355 missing"

let mid_entry () =
  match Experiments.Suite.find "s9234" with
  | Some e -> e
  | None -> Alcotest.fail "s9234 missing"

let test_table2_row () =
  let r = Experiments.Table2.run (small_entry ()) in
  checkb "has CLBs" true (r.Experiments.Table2.clbs > 0);
  (* IOBs = chip pads of the source circuit. *)
  let c = Lazy.force (small_entry ()).Experiments.Suite.circuit in
  checki "IOBs = PI + PO"
    (Array.length c.Netlist.Circuit.inputs + Array.length c.Netlist.Circuit.outputs)
    r.Experiments.Table2.iobs

let test_fig3_row () =
  let r = Experiments.Fig3.run (mid_entry ()) in
  let total =
    r.Experiments.Fig3.pct_single_output
    +. r.Experiments.Fig3.pct_multi_psi0
    +. List.fold_left (fun acc (_, v) -> acc +. v) 0.0 r.Experiments.Fig3.by_psi
  in
  checkb "percentages sum to 100" true (Float.abs (total -. 100.0) < 0.5);
  (* The paper's qualitative claim: a substantial share of cells has
     psi >= 1 after mapping. *)
  let psi_ge_1 =
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0 r.Experiments.Fig3.by_psi
  in
  checkb "most replication potential exists" true (psi_ge_1 > 30.0)

let test_table3_row () =
  let r = Experiments.Table3.run ~runs:4 ~seed:3 (mid_entry ()) in
  checkb "plain found cuts" true (r.Experiments.Table3.plain_best > 0);
  checkb "replication never worse (staged)" true
    (r.Experiments.Table3.repl_best <= r.Experiments.Table3.plain_best);
  checkb "avg >= best" true
    (r.Experiments.Table3.repl_avg >= float_of_int r.Experiments.Table3.repl_best);
  (* On a clustered sequential circuit the reduction should be large; use
     a conservative floor. *)
  checkb "sequential circuits gain a lot" true
    (r.Experiments.Table3.best_reduction > 20.0)

let test_kway_campaign_row () =
  let r =
    Experiments.Kway_campaign.run ~runs:2 ~seed:2
      ~settings:[ Experiments.Kway_campaign.Baseline; Experiments.Kway_campaign.Threshold 1 ]
      (mid_entry ())
  in
  checki "two settings" 2 (List.length r.Experiments.Kway_campaign.results);
  List.iter
    (fun (_, o) ->
      checkb "feasible" true o.Experiments.Kway_campaign.feasible;
      checkb "cost positive" true (o.Experiments.Kway_campaign.cost > 0.0);
      checkb "clb util sane" true
        (o.Experiments.Kway_campaign.clb_util > 0.2
        && o.Experiments.Kway_campaign.clb_util <= 1.0);
      checkb "iob util sane" true
        (o.Experiments.Kway_campaign.iob_util > 0.0
        && o.Experiments.Kway_campaign.iob_util <= 1.0))
    r.Experiments.Kway_campaign.results;
  (* Replication relieves the interconnect: the paper's Table VII story. *)
  let util s =
    match List.assoc_opt s r.Experiments.Kway_campaign.results with
    | Some o -> o.Experiments.Kway_campaign.iob_util
    | None -> nan
  in
  checkb "IOB utilization reduced by replication" true
    (util (Experiments.Kway_campaign.Threshold 1)
    < util Experiments.Kway_campaign.Baseline)

let test_objectives_rows () =
  let rows = Experiments.Objectives.run ~runs:2 ~seed:1 (mid_entry ()) in
  checki "one row per builtin objective"
    (List.length Fpga.Objective.builtins)
    (List.length rows);
  List.iter
    (fun (r : Experiments.Objectives.row) ->
      match r.Experiments.Objectives.outcome with
      | Error e -> Alcotest.fail (r.Experiments.Objectives.objective ^ ": " ^ e)
      | Ok result ->
          checkb "cost positive" true
            (result.Core.Kway.summary.Fpga.Cost.total_cost > 0.0))
    rows;
  (* The JSON rows carry the schema the bench document promises. *)
  match Experiments.Objectives.rows_to_json rows with
  | Obs.Json.List (Obs.Json.Obj fields :: _) ->
      List.iter
        (fun key ->
          checkb ("row has " ^ key) true (List.mem_assoc key fields))
        [
          "circuit"; "objective"; "num_partitions"; "device_cost";
          "objective_cost"; "total_iobs"; "resource_util";
        ]
  | _ -> Alcotest.fail "rows_to_json shape"

(* ------------------------------------------------------------------ *)
(* Partition expansion (end-to-end functional soundness)              *)
(* ------------------------------------------------------------------ *)

let expand_roundtrip name circuit replication =
  let m = Techmap.Mapper.map circuit in
  let h = Techmap.Mapper.to_hypergraph m in
  let options = Core.Kway.Options.make ~runs:2 ~replication () in
  match Core.Kway.partition ~options ~library:Fpga.Library.xc3000 h with
  | Error e -> Alcotest.fail (name ^ ": k-way failed: " ^ e)
  | Ok r -> (
      match Experiments.Expand.verify circuit m r with
      | Ok () -> r
      | Error e -> Alcotest.fail (name ^ ": " ^ e))

let test_expand_combinational () =
  (* Forces multiple devices and actual replication. *)
  let c = Netlist.Generator.multiplier ~bits:16 () in
  let r = expand_roundtrip "mult16" c (`Functional 0) in
  checkb "replication actually happened" true (r.Core.Kway.replicated_cells > 0)

let test_expand_sequential () =
  let c =
    Netlist.Generator.clustered
      {
        Netlist.Generator.default_clustered with
        clusters = 10;
        gates_per_cluster = 90;
        dffs_per_cluster = 20;
        seed = 21;
      }
  in
  let r = expand_roundtrip "clustered" c (`Functional 1) in
  checkb "multi-device" true (List.length r.Core.Kway.parts >= 2)

let test_expand_no_replication () =
  let c = Netlist.Generator.adder_comparator ~bits:48 () in
  let r = expand_roundtrip "addcmp" c `None in
  checki "no replicas in baseline" 0 r.Core.Kway.replicated_cells

let test_expand_detects_missing_output () =
  let c = Netlist.Generator.multiplier ~bits:16 () in
  let m = Techmap.Mapper.map c in
  let h = Techmap.Mapper.to_hypergraph m in
  let options = Core.Kway.Options.make ~runs:1 () in
  match Core.Kway.partition ~options ~library:Fpga.Library.xc3000 h with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let broken =
        match r.Core.Kway.parts with
        | p :: rest ->
            {
              r with
              Core.Kway.parts =
                { p with Core.Kway.members = List.tl p.Core.Kway.members }
                :: rest;
            }
        | [] -> r
      in
      checkb "verify rejects uncovered output" true
        (Result.is_error (Experiments.Expand.verify c m broken))

(* ------------------------------------------------------------------ *)
(* Timing evaluation                                                  *)
(* ------------------------------------------------------------------ *)

let test_timing_eval () =
  match Experiments.Suite.find "s9234" with
  | None -> Alcotest.fail "s9234 missing"
  | Some entry -> (
      match Experiments.Timing_eval.run ~runs:2 ~seed:4 entry with
      | None -> Alcotest.fail "timing evaluation failed to partition"
      | Some row ->
          checkb "baseline delay positive" true
            (row.Experiments.Timing_eval.baseline_delay > 0.0);
          checkb "replication delay positive" true
            (row.Experiments.Timing_eval.repl_delay > 0.0);
          (* Replication cannot make the interconnect-dominated critical
             path dramatically worse; allow slack for heuristic noise. *)
          checkb "replication roughly as fast or faster" true
            (row.Experiments.Timing_eval.repl_delay
            <= 1.15 *. row.Experiments.Timing_eval.baseline_delay))

let test_crossing_nets_matches_iobs () =
  (* Every net flagged crossing either reaches a pad or touches >= 2
     parts; pads are always crossing. *)
  let c = Netlist.Generator.multiplier ~bits:16 () in
  let m = Techmap.Mapper.map c in
  let h = Techmap.Mapper.to_hypergraph m in
  let options = Core.Kway.Options.make ~runs:1 () in
  match Core.Kway.partition ~options ~library:Fpga.Library.xc3000 h with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let crossing = Experiments.Timing_eval.crossing_nets h r in
      Array.iteri
        (fun n ext -> if ext then checkb "pads cross" true crossing.(n))
        h.Hypergraph.net_external;
      (* At least the recorded IOB sum's worth of crossing nets exist. *)
      let n_crossing =
        Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 crossing
      in
      checkb "some crossings" true (n_crossing > 0)

let () =
  Alcotest.run "experiments"
    [
      ( "suite",
        [
          Alcotest.test_case "shape" `Quick test_suite_shape;
          Alcotest.test_case "find" `Quick test_suite_find;
          Alcotest.test_case "memoised" `Quick test_suite_memoised;
          Alcotest.test_case "sequential flags" `Quick test_suite_sequential_flags;
          Alcotest.test_case "mapping equivalence" `Slow
            test_suite_mapping_equivalence;
        ] );
      ( "tables",
        [
          Alcotest.test_case "table2 row" `Quick test_table2_row;
          Alcotest.test_case "fig3 row" `Quick test_fig3_row;
          Alcotest.test_case "table3 row" `Slow test_table3_row;
          Alcotest.test_case "k-way campaign row" `Slow test_kway_campaign_row;
          Alcotest.test_case "objectives ablation rows" `Slow
            test_objectives_rows;
        ] );
      ( "timing",
        [
          Alcotest.test_case "timing evaluation" `Slow test_timing_eval;
          Alcotest.test_case "crossing nets" `Slow test_crossing_nets_matches_iobs;
        ] );
      ( "expand",
        [
          Alcotest.test_case "combinational with replication" `Slow
            test_expand_combinational;
          Alcotest.test_case "sequential with replication" `Slow
            test_expand_sequential;
          Alcotest.test_case "baseline" `Slow test_expand_no_replication;
          Alcotest.test_case "detects uncovered outputs" `Quick
            test_expand_detects_missing_output;
        ] );
    ]
