(* Tests for the gate-level substrate: PRNG, growable arrays, gate algebra,
   circuit IR, .bench format, simulation, and the circuit generators. *)

open Netlist

let check = Alcotest.check
let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b)) then differs := true
  done;
  checkb "different seeds differ" true !differs

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  checki "copy continues the stream" (Rng.int a 1000) (Rng.int b 1000)

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    checkb "int in range" true (x >= 0 && x < 17);
    let y = Rng.int_in rng 5 9 in
    checkb "int_in in range" true (y >= 5 && y <= 9);
    let f = Rng.float rng 2.5 in
    checkb "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_sample () =
  let rng = Rng.create 11 in
  let s = Rng.sample rng 10 20 in
  checki "sample size" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 9 do
    checkb "distinct" true (sorted.(i) <> sorted.(i - 1))
  done;
  Array.iter (fun x -> checkb "in range" true (x >= 0 && x < 20)) s

let test_rng_shuffle_permutes () =
  let rng = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Rng.int_in rng 3 2));
  Alcotest.check_raises "sample too big" (Invalid_argument "Rng.sample: n > bound")
    (fun () -> ignore (Rng.sample rng 5 4))

(* ------------------------------------------------------------------ *)
(* Vec                                                                *)
(* ------------------------------------------------------------------ *)

let test_vec_basic () =
  let v = Vec.create () in
  checki "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    checki "push returns index" i (Vec.push v (i * 2))
  done;
  checki "length" 100 (Vec.length v);
  checki "get" 84 (Vec.get v 42);
  Vec.set v 42 (-1);
  checki "set" (-1) (Vec.get v 42);
  checki "fold" (Array.fold_left ( + ) 0 (Vec.to_array v))
    (Vec.fold_left ( + ) 0 v)

let test_vec_bounds () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 3));
  Alcotest.check_raises "get neg" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v (-1)))

let test_vec_iteri () =
  let v = Vec.of_array [| 10; 20; 30 |] in
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check Alcotest.(list (pair int int)) "iteri order" [ (0, 10); (1, 20); (2, 30) ]
    (List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Gate                                                               *)
(* ------------------------------------------------------------------ *)

let test_gate_truth_tables () =
  let t = true and f = false in
  checkb "and" t (Gate.eval Gate.And [| t; t; t |]);
  checkb "and f" f (Gate.eval Gate.And [| t; f; t |]);
  checkb "nand" f (Gate.eval Gate.Nand [| t; t |]);
  checkb "or" t (Gate.eval Gate.Or [| f; f; t |]);
  checkb "nor" t (Gate.eval Gate.Nor [| f; f |]);
  checkb "xor odd" t (Gate.eval Gate.Xor [| t; t; t |]);
  checkb "xor even" f (Gate.eval Gate.Xor [| t; t |]);
  checkb "xnor" t (Gate.eval Gate.Xnor [| t; t |]);
  checkb "not" f (Gate.eval Gate.Not [| t |]);
  checkb "buf" t (Gate.eval Gate.Buf [| t |]);
  checkb "const0" f (Gate.eval Gate.Const0 [||]);
  checkb "const1" t (Gate.eval Gate.Const1 [||])

let test_gate_string_roundtrip () =
  List.iter
    (fun k ->
      match Gate.of_string (Gate.to_string k) with
      | Some k' -> checkb "roundtrip" true (Gate.equal k k')
      | None -> Alcotest.fail "of_string failed")
    [ Gate.Input; Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor;
      Gate.Not; Gate.Buf; Gate.Dff; Gate.Const0; Gate.Const1 ]

let test_gate_bad_arity () =
  Alcotest.check_raises "not/2" (Invalid_argument "Gate.eval: bad arity for NOT")
    (fun () -> ignore (Gate.eval Gate.Not [| true; false |]));
  Alcotest.check_raises "input" (Invalid_argument "Gate.eval: not a combinational gate")
    (fun () -> ignore (Gate.eval Gate.Input [||]))

let qcheck_demorgan =
  QCheck.Test.make ~name:"de morgan: NAND = OR of NOTs" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 6) bool)
    (fun bits ->
      let ins = Array.of_list bits in
      let nand = Gate.eval Gate.Nand ins in
      let or_of_nots = Gate.eval Gate.Or (Array.map not ins) in
      nand = or_of_nots)

let qcheck_xor_assoc =
  QCheck.Test.make ~name:"xor = parity" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 8) bool)
    (fun bits ->
      let ins = Array.of_list bits in
      Gate.eval Gate.Xor ins
      = (List.length (List.filter Fun.id bits) mod 2 = 1))

(* ------------------------------------------------------------------ *)
(* Circuit                                                            *)
(* ------------------------------------------------------------------ *)

let test_builder_basic () =
  let b = Circuit.Builder.create ~name:"t" () in
  let a = Circuit.Builder.input b "a" in
  let c = Circuit.Builder.input b "c" in
  let g = Circuit.Builder.gate b ~name:"g" Gate.And [ a; c ] in
  Circuit.Builder.mark_output b g;
  let circ = Circuit.Builder.finish b in
  checki "nodes" 3 (Circuit.num_nodes circ);
  checki "gates" 1 (Circuit.num_gates circ);
  checki "dff" 0 (Circuit.num_dff circ);
  checkb "validate" true (Result.is_ok (Circuit.validate circ));
  checkb "is_output" true (Circuit.is_output circ g);
  check Alcotest.(option int) "find" (Some g) (Circuit.find circ "g")

let test_builder_duplicate_name () =
  let b = Circuit.Builder.create () in
  ignore (Circuit.Builder.input b "a");
  Alcotest.check_raises "dup"
    (Invalid_argument "Circuit.Builder: duplicate signal name a") (fun () ->
      ignore (Circuit.Builder.input b "a"))

let test_builder_dff_feedback () =
  (* q feeds the logic computing its own D: legal sequential feedback. *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let q = Circuit.Builder.dff_placeholder b "q" in
  let d = Circuit.Builder.gate b Gate.Xor [ a; q ] in
  Circuit.Builder.connect_dff b q d;
  Circuit.Builder.mark_output b q;
  let c = Circuit.Builder.finish b in
  checkb "validate" true (Result.is_ok (Circuit.validate c));
  checki "dff count" 1 (Circuit.num_dff c)

let test_builder_unconnected_dff () =
  let b = Circuit.Builder.create () in
  ignore (Circuit.Builder.input b "a");
  ignore (Circuit.Builder.dff_placeholder b "q");
  Alcotest.check_raises "unconnected"
    (Invalid_argument "Circuit.Builder.finish: flip-flop q never connected")
    (fun () -> ignore (Circuit.Builder.finish b))

let test_levels_and_depth () =
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let x = Circuit.Builder.gate b Gate.Not [ a ] in
  let y = Circuit.Builder.gate b Gate.Not [ x ] in
  let z = Circuit.Builder.gate b Gate.And [ a; y ] in
  Circuit.Builder.mark_output b z;
  let c = Circuit.Builder.finish b in
  let lv = Circuit.levels c in
  checki "input level" 0 lv.(a);
  checki "not level" 1 lv.(x);
  checki "depth" 3 (Circuit.depth c)

let test_topological_order () =
  let c = Generator.clustered Generator.default_clustered in
  let order = Circuit.topological_order c in
  checki "covers all nodes" (Circuit.num_nodes c) (Array.length order);
  let pos = Array.make (Circuit.num_nodes c) (-1) in
  Array.iteri (fun p i -> pos.(i) <- p) order;
  (* Every combinational gate appears after its fanins. *)
  for i = 0 to Circuit.num_nodes c - 1 do
    let nd = Circuit.node c i in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Dff -> ()
    | _ ->
        Array.iter
          (fun f -> checkb "fanin precedes" true (pos.(f) < pos.(i)))
          nd.Circuit.fanins
  done

(* ------------------------------------------------------------------ *)
(* Bench format                                                       *)
(* ------------------------------------------------------------------ *)

let test_bench_parse_c17_text () =
  let text =
    "# c17\n\
     INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\n\
     OUTPUT(22)\nOUTPUT(23)\n\
     10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n\
     19 = NAND(11, 7)\n22 = NAND(10, 16)\n23 = NAND(16, 19)\n"
  in
  match Bench_format.parse text with
  | Error e -> Alcotest.fail e
  | Ok c ->
      checki "inputs" 5 (Array.length c.Circuit.inputs);
      checki "outputs" 2 (Array.length c.Circuit.outputs);
      checki "gates" 6 (Circuit.num_gates c)

let test_bench_use_before_def () =
  (* Signals may be referenced before their defining line. *)
  let text = "INPUT(a)\nOUTPUT(z)\nz = NOT(y)\ny = NOT(a)\n" in
  match Bench_format.parse text with
  | Error e -> Alcotest.fail e
  | Ok c -> checki "gates" 2 (Circuit.num_gates c)

let test_bench_sequential_feedback () =
  let text = "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(a, q)\n" in
  match Bench_format.parse text with
  | Error e -> Alcotest.fail e
  | Ok c ->
      checki "dffs" 1 (Circuit.num_dff c);
      checkb "valid" true (Result.is_ok (Circuit.validate c))

let test_bench_errors () =
  let is_err s = Result.is_error (Bench_format.parse s) in
  checkb "cycle" true (is_err "INPUT(a)\nx = NOT(y)\ny = NOT(x)\nOUTPUT(x)\n");
  checkb "undefined" true (is_err "OUTPUT(z)\nz = NOT(ghost)\n");
  checkb "dup" true (is_err "INPUT(a)\nINPUT(a)\n");
  checkb "unknown gate" true (is_err "INPUT(a)\nz = FROB(a)\nOUTPUT(z)\n");
  checkb "syntax" true (is_err "INPUT a\n")

(* Every parser error — syntax *and* resolution — must name a source
   line: "line N: ..." is what lets a user fix a 40k-line netlist. *)
let err_at parse label expected_prefix text =
  match parse text with
  | Ok _ -> Alcotest.failf "%s: expected an error" label
  | Error msg ->
      checkb
        (Printf.sprintf "%s: %S starts with %S" label msg expected_prefix)
        true
        (String.starts_with ~prefix:expected_prefix msg)

let test_bench_error_lines () =
  let e = err_at Bench_format.parse in
  e "unknown gate" "line 2: unknown gate type: FROB"
    "INPUT(a)\nz = FROB(a)\nOUTPUT(z)\n";
  e "duplicate input" "line 3: duplicate definition of a (first at line 1)"
    "INPUT(a)\nINPUT(b)\nINPUT(a)\n";
  e "duplicate gate" "line 4: duplicate definition of z (first at line 3)"
    "INPUT(a)\nINPUT(b)\nz = AND(a, b)\nz = OR(a, b)\nOUTPUT(z)\n";
  e "undefined fanin" "line 2: undefined signal: ghost"
    "INPUT(a)\nz = NOT(ghost)\nOUTPUT(z)\n";
  e "undefined output" "line 1: undefined output signal: z" "OUTPUT(z)\nINPUT(a)\n";
  (* The cycle is reported from the statement that closes it. *)
  e "cycle" "line 3: combinational cycle at"
    "INPUT(a)\nx = NOT(y)\ny = NOT(x)\nOUTPUT(x)\n";
  (* A truncated file: the last gate's fanin was cut off. *)
  e "truncated" "line 3: undefined signal: w"
    "INPUT(a)\nz = NOT(a)\nq = AND(z, w)\nOUTPUT(q)"

let test_blif_error_lines () =
  let e = err_at Blif.parse in
  e "duplicate names" "line 6: duplicate definition of f (first at line 4)"
    ".model m\n.inputs a b\n.outputs f\n.names a f\n1 1\n.names b f\n1 1\n.end\n";
  e "duplicate vs input" "line 3: duplicate definition of a (first at line 2)"
    ".model m\n.inputs a\n.names a\n1\n.end\n";
  e "undefined signal" "line 3: undefined signal: g"
    ".model m\n.outputs f\n.names g f\n1 1\n.end\n";
  e "undefined output" "line 2: undefined output signal: f"
    ".model m\n.outputs f\n.end\n";
  (* A truncated file: cover rows cut off mid-row. *)
  e "truncated cover" "line 5: bad cover row: 1"
    ".model m\n.inputs a b\n.outputs f\n.names a b f\n1";
  e "cycle" "line 5: combinational cycle at"
    ".model m\n.inputs a\n.names g f\n1 1\n.names f g\n1 1\n.outputs f\n.end\n"

let equivalent_comb ?(vectors = 32) c1 c2 =
  (* Compare primary outputs on shared random stimulus. *)
  let rng = Rng.create 99 in
  let vecs = Simulate.random_vectors rng c1 vectors in
  let o1 = Simulate.run c1 vecs and o2 = Simulate.run c2 vecs in
  o1 = o2

let test_bench_roundtrip () =
  List.iter
    (fun c ->
      match Bench_format.parse (Bench_format.to_string c) with
      | Error e -> Alcotest.fail e
      | Ok c' ->
          checki "same gates" (Circuit.num_gates c) (Circuit.num_gates c');
          checki "same dffs" (Circuit.num_dff c) (Circuit.num_dff c');
          checki "same inputs" (Array.length c.Circuit.inputs)
            (Array.length c'.Circuit.inputs);
          checkb "behaviour preserved" true (equivalent_comb c c'))
    [
      Generator.c17 ();
      Generator.ripple_adder ~bits:4 ();
      Generator.clustered
        { Generator.default_clustered with clusters = 2; gates_per_cluster = 20 };
    ]

let qcheck_bench_roundtrip =
  QCheck.Test.make ~name:"bench roundtrip preserves behaviour" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create seed in
      let c =
        Generator.random ~rng ~num_inputs:4 ~num_gates:25 ~num_dff:3
          ~num_outputs:4 ()
      in
      match Bench_format.parse (Bench_format.to_string c) with
      | Error _ -> false
      | Ok c' -> equivalent_comb c c')

(* ------------------------------------------------------------------ *)
(* Simulation & generators                                            *)
(* ------------------------------------------------------------------ *)

let bits_of_int width n = Array.init width (fun i -> (n lsr i) land 1 = 1)
let int_of_bits bits =
  Array.to_list bits
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let test_c17_truth_table () =
  let c = Generator.c17 () in
  (* Exhaustive check against the NAND network evaluated directly. *)
  for v = 0 to 31 do
    let pi = bits_of_int 5 v in
    let g1 = pi.(0) and g2 = pi.(1) and g3 = pi.(2) and g6 = pi.(3) and g7 = pi.(4) in
    let nand a b = not (a && b) in
    let n10 = nand g1 g3 and n11 = nand g3 g6 in
    let n16 = nand g2 n11 and n19 = nand n11 g7 in
    let expect = [| nand n10 n16; nand n16 n19 |] in
    let outs, _ = Simulate.step c (Simulate.initial_state c) pi in
    check Alcotest.(array bool) "c17 outputs" expect outs
  done

let qcheck_adder_adds =
  QCheck.Test.make ~name:"ripple adder computes a+b+cin" ~count:200
    QCheck.(triple (int_bound 255) (int_bound 255) bool)
    (fun (a, b, cin) ->
      let c = Generator.ripple_adder ~bits:8 () in
      let pi = Array.concat [ bits_of_int 8 a; bits_of_int 8 b; [| cin |] ] in
      let outs, _ = Simulate.step c (Simulate.initial_state c) pi in
      int_of_bits outs = a + b + if cin then 1 else 0)

let qcheck_multiplier_multiplies =
  QCheck.Test.make ~name:"array multiplier computes a*b" ~count:100
    QCheck.(pair (int_bound 63) (int_bound 63))
    (fun (a, b) ->
      let c = Generator.multiplier ~bits:6 () in
      let pi = Array.concat [ bits_of_int 6 a; bits_of_int 6 b ] in
      let outs, _ = Simulate.step c (Simulate.initial_state c) pi in
      int_of_bits outs = a * b)

let test_alu_ops () =
  let bits = 4 in
  let c = Generator.alu ~bits () in
  let run a b s0 s1 cin =
    let pi =
      Array.concat [ bits_of_int bits a; bits_of_int bits b; [| s0; s1; cin |] ]
    in
    let outs, _ = Simulate.step c (Simulate.initial_state c) pi in
    (* outputs: bits results, carry, zero *)
    let value = int_of_bits (Array.sub outs 0 bits) in
    let zero = outs.(bits + 1) in
    (value, zero)
  in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let v_and, z_and = run a b false false false in
      checki "AND" (a land b) v_and;
      checkb "zero flag" (a land b = 0) z_and;
      let v_or, _ = run a b true false false in
      checki "OR" (a lor b) v_or;
      let v_xor, _ = run a b false true false in
      checki "XOR" (a lxor b) v_xor;
      let v_add, _ = run a b true true false in
      checki "ADD" ((a + b) land 15) v_add
    done
  done

let test_ecc_no_error () =
  let data_bits = 16 in
  let c = Generator.ecc ~data_bits () in
  let r = Array.length c.Circuit.inputs - data_bits in
  let rng = Rng.create 4 in
  for _ = 1 to 20 do
    let data = Array.init data_bits (fun _ -> Rng.bool rng) in
    (* Compute the matching check bits by probing with zero checks: the
       syndrome then equals the data parity per group. *)
    let pi0 = Array.concat [ data; Array.make r false ] in
    let outs0, _ = Simulate.step c (Simulate.initial_state c) pi0 in
    let checks = Array.sub outs0 0 r in
    (* With proper check bits: zero syndrome and corrected = data. *)
    let pi = Array.concat [ data; checks ] in
    let outs, _ = Simulate.step c (Simulate.initial_state c) pi in
    check Alcotest.(array bool) "zero syndrome" (Array.make r false)
      (Array.sub outs 0 r);
    check Alcotest.(array bool) "data passthrough" data
      (Array.sub outs r data_bits)
  done

let test_ecc_corrects_single_error () =
  let data_bits = 16 in
  let c = Generator.ecc ~data_bits () in
  let r = Array.length c.Circuit.inputs - data_bits in
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    let data = Array.init data_bits (fun _ -> Rng.bool rng) in
    let pi0 = Array.concat [ data; Array.make r false ] in
    let outs0, _ = Simulate.step c (Simulate.initial_state c) pi0 in
    let checks = Array.sub outs0 0 r in
    (* Flip one random data bit; the decoder must restore it. *)
    let k = Rng.int rng data_bits in
    let corrupted = Array.copy data in
    corrupted.(k) <- not corrupted.(k);
    let pi = Array.concat [ corrupted; checks ] in
    let outs, _ = Simulate.step c (Simulate.initial_state c) pi in
    check Alcotest.(array bool) "corrected" data (Array.sub outs r data_bits)
  done

let test_adder_comparator () =
  let bits = 6 in
  let c = Generator.adder_comparator ~bits () in
  let rng = Rng.create 6 in
  for _ = 1 to 100 do
    let a = Rng.int rng 64 and b = Rng.int rng 64 in
    let pi = Array.concat [ bits_of_int bits a; bits_of_int bits b; [| false |] ] in
    let outs, _ = Simulate.step c (Simulate.initial_state c) pi in
    (* outputs: sum bits, cout, gt, eq, parity a, parity b *)
    checki "sum" (a + b) (int_of_bits (Array.sub outs 0 (bits + 1)));
    checkb "gt" (a > b) outs.(bits + 1);
    checkb "eq" (a = b) outs.(bits + 2)
  done

let test_counter_via_dff () =
  (* A 1-bit toggle built by hand: q' = XOR(q, 1). *)
  let b = Circuit.Builder.create () in
  let en = Circuit.Builder.input b "en" in
  let q = Circuit.Builder.dff_placeholder b "q" in
  let d = Circuit.Builder.gate b Gate.Xor [ q; en ] in
  Circuit.Builder.connect_dff b q d;
  Circuit.Builder.mark_output b q;
  let c = Circuit.Builder.finish b in
  let vectors = Array.make 6 [| true |] in
  let outs = Simulate.run c vectors in
  let seq = Array.map (fun o -> o.(0)) outs in
  check Alcotest.(array bool) "toggles"
    [| false; true; false; true; false; true |] seq

let test_clustered_wellformed () =
  let c = Generator.clustered Generator.default_clustered in
  checkb "valid" true (Result.is_ok (Circuit.validate c));
  (* Every primary input feeds something. *)
  Array.iter
    (fun i -> checkb "pi used" true (Array.length c.Circuit.fanouts.(i) > 0))
    c.Circuit.inputs;
  checkb "has dffs" true (Circuit.num_dff c > 0)

let test_clustered_deterministic () =
  let p = Generator.default_clustered in
  let a = Bench_format.to_string (Generator.clustered p) in
  let b = Bench_format.to_string (Generator.clustered p) in
  check Alcotest.string "same seed, same circuit" a b;
  let c = Bench_format.to_string (Generator.clustered { p with seed = 2 }) in
  checkb "different seed differs" true (not (String.equal a c))

let qcheck_random_circuit_valid =
  QCheck.Test.make ~name:"random circuits are well-formed" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create seed in
      let c =
        Generator.random ~rng ~num_inputs:5 ~num_gates:40 ~num_dff:4
          ~num_outputs:6 ()
      in
      Result.is_ok (Circuit.validate c))

let test_stats () =
  let c = Generator.c17 () in
  let s = Stats.compute c in
  checki "inputs" 5 s.Stats.num_inputs;
  checki "outputs" 2 s.Stats.num_outputs;
  checki "gates" 6 s.Stats.num_gates;
  checki "dff" 0 s.Stats.num_dff;
  (* 11 signals, all driven/read. Gate fanin pins = 12, plus 5 PI + 2 PO. *)
  checki "pins" 19 s.Stats.num_pins;
  checki "depth" 3 s.Stats.depth

(* ------------------------------------------------------------------ *)
(* Transforms                                                         *)
(* ------------------------------------------------------------------ *)

let equivalent_seq ?(vectors = 32) c1 c2 =
  let rng = Rng.create 123 in
  let vecs = Simulate.random_vectors rng c1 vectors in
  Simulate.run c1 vecs = Simulate.run c2 vecs

let test_const_propagation () =
  (* z = AND(a, OR(b, 1)) = a;  w = XOR(a, 0) = a. *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let bb = Circuit.Builder.input b "b" in
  let one = Circuit.Builder.gate b Gate.Const1 [] in
  let zero = Circuit.Builder.gate b Gate.Const0 [] in
  let o = Circuit.Builder.gate b Gate.Or [ bb; one ] in
  let z = Circuit.Builder.gate b ~name:"z" Gate.And [ a; o ] in
  let w = Circuit.Builder.gate b ~name:"w" Gate.Xor [ a; zero ] in
  Circuit.Builder.mark_output b z;
  Circuit.Builder.mark_output b w;
  let c = Circuit.Builder.finish b in
  let c' = Transform.propagate_constants c in
  checkb "equivalent" true (equivalent_seq c c');
  (* Both outputs collapse to buffers of a; all logic gates vanish. *)
  checkb "shrinks" true (Circuit.num_gates c' < Circuit.num_gates c);
  check Alcotest.(option int) "z survives by name" (Circuit.find c' "z")
    (Circuit.find c' "z");
  checkb "z exists" true (Circuit.find c' "z" <> None)

let test_const_propagation_to_output () =
  (* A primary output that becomes constant is emitted as a constant node
     with the right name. *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let zero = Circuit.Builder.gate b Gate.Const0 [] in
  let z = Circuit.Builder.gate b ~name:"z" Gate.And [ a; zero ] in
  Circuit.Builder.mark_output b z;
  let c = Circuit.Builder.finish b in
  let c' = Transform.propagate_constants c in
  checkb "equivalent" true (equivalent_seq c c');
  match Circuit.find c' "z" with
  | Some id ->
      checkb "constant zero" true
        (Gate.equal (Circuit.node c' id).Circuit.kind Gate.Const0)
  | None -> Alcotest.fail "output z lost"

let test_collapse_buffers () =
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let b1 = Circuit.Builder.gate b Gate.Buf [ a ] in
  let n1 = Circuit.Builder.gate b Gate.Not [ b1 ] in
  let n2 = Circuit.Builder.gate b Gate.Not [ n1 ] in
  let z = Circuit.Builder.gate b ~name:"z" Gate.And [ n2; a ] in
  Circuit.Builder.mark_output b z;
  let c = Circuit.Builder.finish b in
  let c' = Transform.collapse_buffers c in
  checkb "equivalent" true (equivalent_seq c c');
  (* The buffer and the double inverter are bypassed; the now-dead inner
     NOT is sweep's job. After sweeping only the AND remains. *)
  checkb "shrinks" true (Circuit.num_gates c' < Circuit.num_gates c);
  checki "only the AND remains after sweep" 1
    (Circuit.num_gates (Transform.sweep c'))

let test_strash () =
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let bb = Circuit.Builder.input b "b" in
  let g1 = Circuit.Builder.gate b Gate.And [ a; bb ] in
  let g2 = Circuit.Builder.gate b Gate.And [ bb; a ] in
  (* commutative dup *)
  let z = Circuit.Builder.gate b ~name:"z" Gate.Xor [ g1; g2 ] in
  Circuit.Builder.mark_output b z;
  let c = Circuit.Builder.finish b in
  let c' = Transform.strash c in
  checkb "equivalent" true (equivalent_seq c c');
  checkb "duplicate AND merged" true (Circuit.num_gates c' < Circuit.num_gates c)

let test_sweep () =
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let unused_pi = Circuit.Builder.input b "unused" in
  let live = Circuit.Builder.gate b ~name:"z" Gate.Not [ a ] in
  let dead = Circuit.Builder.gate b Gate.Not [ live ] in
  let _dead2 = Circuit.Builder.gate b Gate.And [ dead; a ] in
  let dq = Circuit.Builder.dff_placeholder b "deadq" in
  Circuit.Builder.connect_dff b dq dead;
  Circuit.Builder.mark_output b live;
  let c = Circuit.Builder.finish b in
  let c' = Transform.sweep c in
  checkb "equivalent" true (equivalent_seq c c');
  checki "only live gate kept" 1 (Circuit.num_gates c');
  checki "dead flip-flop removed" 0 (Circuit.num_dff c');
  (* The unused primary input remains part of the interface. *)
  checki "PIs kept" 2 (Array.length c'.Circuit.inputs);
  ignore unused_pi

let inject_noise rng c =
  (* Rebuild [c] with extra constants, buffers and duplicate gates so the
     optimizer has something to chew on, preserving behaviour. Invented
     nodes get a reserved prefix so they cannot collide with source
     names. *)
  let b = Circuit.Builder.create ~name:"noisy" () in
  let fresh =
    let k = ref 0 in
    fun () ->
      incr k;
      Printf.sprintf "$noise%d" !k
  in
  let num = Circuit.num_nodes c in
  let new_id = Array.make num (-1) in
  Array.iter
    (fun i -> new_id.(i) <- Circuit.Builder.input b (Circuit.node c i).Circuit.name)
    c.Circuit.inputs;
  for i = 0 to num - 1 do
    if Gate.equal (Circuit.node c i).Circuit.kind Gate.Dff then
      new_id.(i) <- Circuit.Builder.dff_placeholder b (Circuit.node c i).Circuit.name
  done;
  let order = Circuit.topological_order c in
  Array.iter
    (fun i ->
      let nd = Circuit.node c i in
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()
      | kind ->
          let fanins =
            Array.to_list nd.Circuit.fanins
            |> List.map (fun f ->
                   let id = new_id.(f) in
                   match Rng.int rng 4 with
                   | 0 -> Circuit.Builder.gate b ~name:(fresh ()) Gate.Buf [ id ]
                   | 1 ->
                       let n1 =
                         Circuit.Builder.gate b ~name:(fresh ()) Gate.Not [ id ]
                       in
                       Circuit.Builder.gate b ~name:(fresh ()) Gate.Not [ n1 ]
                   | 2 ->
                       let zero =
                         Circuit.Builder.gate b ~name:(fresh ()) Gate.Const0 []
                       in
                       Circuit.Builder.gate b ~name:(fresh ()) Gate.Xor
                         [ id; zero ]
                   | _ -> id)
          in
          new_id.(i) <- Circuit.Builder.gate b ~name:nd.Circuit.name kind fanins)
    order;
  for i = 0 to num - 1 do
    let nd = Circuit.node c i in
    if Gate.equal nd.Circuit.kind Gate.Dff then
      Circuit.Builder.connect_dff b new_id.(i) new_id.(nd.Circuit.fanins.(0))
  done;
  Array.iter (fun o -> Circuit.Builder.mark_output b new_id.(o)) c.Circuit.outputs;
  Circuit.Builder.finish b

let qcheck_optimize_equivalence =
  QCheck.Test.make ~name:"optimize preserves behaviour and shrinks noise"
    ~count:30 QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 31) in
      let c =
        Generator.random ~rng ~num_inputs:5 ~num_gates:30 ~num_dff:3
          ~num_outputs:4 ()
      in
      let noisy = inject_noise rng c in
      let opt = Transform.optimize noisy in
      equivalent_seq c opt && Circuit.num_gates opt <= Circuit.num_gates noisy)

let test_optimize_shrinks_generator () =
  let c = Generator.adder_comparator ~bits:8 () in
  let opt = Transform.optimize c in
  checkb "equivalent" true (equivalent_seq c opt);
  checkb "not larger" true (Circuit.num_gates opt <= Circuit.num_gates c)

(* ------------------------------------------------------------------ *)
(* BLIF                                                               *)
(* ------------------------------------------------------------------ *)

let test_blif_parse_basic () =
  let text =
    ".model half_adder\n.inputs a b\n.outputs s c\n.names a b s\n10 1\n01 1\n\
     .names a b c\n11 1\n.end\n"
  in
  match Blif.parse text with
  | Error e -> Alcotest.fail e
  | Ok c ->
      checki "inputs" 2 (Array.length c.Circuit.inputs);
      checki "outputs" 2 (Array.length c.Circuit.outputs);
      (* s = XOR, c = AND behaviourally. *)
      let run a b =
        let outs, _ =
          Simulate.step c (Simulate.initial_state c) [| a; b |]
        in
        (outs.(0), outs.(1))
      in
      checkb "s" true (run true false = (true, false));
      checkb "c" true (run true true = (false, true));
      checkb "zero" true (run false false = (false, false))

let test_blif_offset_cover () =
  (* Off-set cover: f is 0 exactly when a=1,b=1 -> f = NAND(a,b). *)
  let text = ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n" in
  match Blif.parse text with
  | Error e -> Alcotest.fail e
  | Ok c ->
      let f a b =
        (fst
           (let outs, st = Simulate.step c (Simulate.initial_state c) [| a; b |] in
            (outs.(0), st)))
      in
      checkb "nand" true (f true true = false && f true false && f false false)

let test_blif_constants_and_latch () =
  let text =
    ".model m\n.inputs a\n.outputs one zero q\n.names one\n1\n.names zero\n\
     .latch d q 0\n.names a q d\n11 1\n.end\n"
  in
  match Blif.parse text with
  | Error e -> Alcotest.fail e
  | Ok c ->
      checki "one latch" 1 (Circuit.num_dff c);
      let outs = Simulate.run c [| [| true |]; [| true |]; [| true |] |] in
      (* one, zero, q: q starts 0, AND(a,q) keeps it 0 forever. *)
      Array.iter
        (fun o -> checkb "row" true (o.(0) && (not o.(1)) && not o.(2)))
        outs

let test_blif_errors () =
  let is_err s = Result.is_error (Blif.parse s) in
  checkb "bad row" true (is_err ".model m\n.inputs a\n.outputs f\n.names a f\n2 1\n.end\n");
  checkb "mixed polarity" true
    (is_err ".model m\n.inputs a b\n.outputs f\n.names a b f\n10 1\n01 0\n.end\n");
  checkb "undefined signal" true (is_err ".model m\n.outputs f\n.names g f\n1 1\n.end\n");
  checkb "unsupported directive" true (is_err ".model m\n.gate nand2 a=x\n.end\n");
  checkb "cycle" true
    (is_err ".model m\n.inputs a\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end\n")

let test_blif_roundtrip () =
  List.iter
    (fun c ->
      match Blif.parse (Blif.to_string c) with
      | Error e -> Alcotest.fail (c.Circuit.name ^ ": " ^ e)
      | Ok c' ->
          checkb (c.Circuit.name ^ " behaviour preserved") true
            (equivalent_seq c c'))
    [
      Generator.c17 ();
      Generator.ripple_adder ~bits:5 ();
      Generator.alu ~bits:3 ();
      Generator.clustered
        { Generator.default_clustered with clusters = 2; gates_per_cluster = 25 };
    ]

let qcheck_blif_roundtrip =
  QCheck.Test.make ~name:"blif roundtrip preserves behaviour" ~count:25
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 41) in
      let c =
        Generator.random ~rng ~num_inputs:4 ~num_gates:25 ~num_dff:3
          ~num_outputs:4 ()
      in
      match Blif.parse (Blif.to_string c) with
      | Error _ -> false
      | Ok c' -> equivalent_seq c c')

let test_blif_continuation_lines () =
  let text =
    ".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
  in
  match Blif.parse text with
  | Error e -> Alcotest.fail e
  | Ok c -> checki "both inputs seen" 2 (Array.length c.Circuit.inputs)

(* ------------------------------------------------------------------ *)
(* Verilog                                                            *)
(* ------------------------------------------------------------------ *)

let test_verilog_parse_c17 () =
  let text =
    "// c17\nmodule c17 (N1, N2, N3, N6, N7, N22, N23);\n\
     input N1, N2, N3, N6, N7;\noutput N22, N23;\nwire N10, N11, N16, N19;\n\
     nand g1 (N10, N1, N3);\nnand g2 (N11, N3, N6);\nnand g3 (N16, N2, N11);\n\
     nand g4 (N19, N11, N7);\nnand g5 (N22, N10, N16);\nnand g6 (N23, N16, N19);\n\
     endmodule\n"
  in
  match Verilog.parse text with
  | Error e -> Alcotest.fail e
  | Ok c ->
      checki "inputs" 5 (Array.length c.Circuit.inputs);
      checki "outputs" 2 (Array.length c.Circuit.outputs);
      checki "gates" 6 (Circuit.num_gates c);
      (* Behaviourally identical to the built-in c17. *)
      checkb "equivalent to builtin" true (equivalent_seq (Generator.c17 ()) c)

let test_verilog_assign_expressions () =
  let text =
    "module m (a, b, c, z, w);\ninput a, b, c;\noutput z, w;\n\
     assign z = ~(a & b) ^ (c | 1'b0);\nassign w = a;\nendmodule\n"
  in
  match Verilog.parse text with
  | Error e -> Alcotest.fail e
  | Ok c ->
      for v = 0 to 7 do
        let a = v land 1 = 1 and b = v land 2 = 2 and cc = v land 4 = 4 in
        let outs, _ = Simulate.step c (Simulate.initial_state c) [| a; b; cc |] in
        checkb "z" ((not (a && b)) <> cc) outs.(0);
        checkb "w" a outs.(1)
      done

let test_verilog_dff_forms () =
  (* Both the 2-port and the ISCAS'89 3-port flip-flop forms. *)
  let text2 =
    "module m (a, q);\ninput a;\noutput q;\ndff d1 (q, a);\nendmodule\n"
  in
  let text3 =
    "module m (CK, a, q);\ninput CK, a;\noutput q;\ndff d1 (CK, q, a);\nendmodule\n"
  in
  (match Verilog.parse text2 with
  | Error e -> Alcotest.fail e
  | Ok c -> checki "2-port dff" 1 (Circuit.num_dff c));
  match Verilog.parse text3 with
  | Error e -> Alcotest.fail e
  | Ok c -> checki "3-port dff" 1 (Circuit.num_dff c)

let test_verilog_comments_and_errors () =
  let ok s = Result.is_ok (Verilog.parse s) in
  checkb "block comment" true
    (ok "module m (a, z); /* hi \n there */ input a; output z; buf g (z, a); endmodule");
  checkb "undriven output" false (ok "module m (z); output z; endmodule");
  checkb "duplicate driver" false
    (ok "module m (a, z); input a; output z; buf g (z, a); not h (z, a); endmodule");
  checkb "cycle" false
    (ok "module m (z); output z; wire y; not g (z, y); not h (y, z); endmodule");
  checkb "syntax" false (ok "module m (a; endmodule")

let test_verilog_roundtrip () =
  List.iter
    (fun c ->
      match Verilog.parse (Verilog.to_string c) with
      | Error e -> Alcotest.fail (c.Circuit.name ^ ": " ^ e)
      | Ok c' ->
          checkb (c.Circuit.name ^ " behaviour preserved") true
            (equivalent_seq c c'))
    [
      Generator.c17 ();
      Generator.ripple_adder ~bits:5 ();
      Generator.ecc ~data_bits:8 ();
      Generator.clustered
        { Generator.default_clustered with clusters = 2; gates_per_cluster = 25 };
    ]

let qcheck_verilog_roundtrip =
  QCheck.Test.make ~name:"verilog roundtrip preserves behaviour" ~count:25
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 53) in
      let c =
        Generator.random ~rng ~num_inputs:4 ~num_gates:25 ~num_dff:3
          ~num_outputs:4 ()
      in
      match Verilog.parse (Verilog.to_string c) with
      | Error _ -> false
      | Ok c' -> equivalent_seq c c')

(* Parsers must never raise on garbage: they return Error. *)
let qcheck_parsers_never_raise =
  QCheck.Test.make ~name:"parsers reject garbage without raising" ~count:300
    QCheck.(string_gen_of_size Gen.(int_range 0 200) Gen.printable)
    (fun junk ->
      let safe parse =
        match parse junk with Ok _ | Error _ -> true | exception _ -> false
      in
      safe Bench_format.parse && safe Blif.parse && safe Verilog.parse)

let qcheck_parsers_never_raise_structured =
  (* Garbage that at least looks like each format's skeleton. *)
  QCheck.Test.make ~name:"parsers reject near-miss inputs without raising"
    ~count:200
    QCheck.(pair (int_range 0 2) (string_gen_of_size Gen.(int_range 0 80) Gen.printable))
    (fun (kind, junk) ->
      let wrap = match kind with
        | 0 -> "INPUT(a)\n" ^ junk ^ "\nOUTPUT(z)\n"
        | 1 -> ".model m\n" ^ junk ^ "\n.end\n"
        | _ -> "module m (a);\n" ^ junk ^ "\nendmodule\n"
      in
      let safe parse =
        match parse wrap with Ok _ | Error _ -> true | exception _ -> false
      in
      safe Bench_format.parse && safe Blif.parse && safe Verilog.parse)

(* ------------------------------------------------------------------ *)
(* Delta (incremental edits)                                          *)
(* ------------------------------------------------------------------ *)

let delta_err name expected c ops =
  match Delta.apply c ops with
  | Ok _ -> Alcotest.failf "%s: expected %s, got Ok" name expected
  | Error e ->
      check Alcotest.string name expected (Delta.error_to_string e);
      e

let test_delta_error_paths () =
  let c = Generator.c17 () in
  (* "22" is the only reader of "10"; the typed error names both ends. *)
  (match delta_err "remove still-referenced"
           (Delta.error_to_string
              (Delta.Still_referenced { removed = "10"; by = "22" }))
           c [ Delta.Remove_cell "10" ]
   with
  | Delta.Still_referenced { removed; by } ->
      check Alcotest.string "removed" "10" removed;
      check Alcotest.string "by" "22" by
  | e -> Alcotest.failf "wrong error: %s" (Delta.error_to_string e));
  (match delta_err "duplicate add"
           (Delta.error_to_string (Delta.Duplicate_cell "16"))
           c [ Delta.Add_cell { name = "16"; kind = Gate.And; fanins = [ "1"; "2" ] } ]
   with
  | Delta.Duplicate_cell n -> check Alcotest.string "dup name" "16" n
  | e -> Alcotest.failf "wrong error: %s" (Delta.error_to_string e));
  (match delta_err "rewire to unknown net"
           (Delta.error_to_string (Delta.Unknown_net { cell = "22"; net = "nope" }))
           c [ Delta.Rewire { cell = "22"; pin = 0; net = "nope" } ]
   with
  | Delta.Unknown_net { cell; net } ->
      check Alcotest.string "cell" "22" cell;
      check Alcotest.string "net" "nope" net
  | e -> Alcotest.failf "wrong error: %s" (Delta.error_to_string e));
  (match delta_err "remove unknown cell"
           (Delta.error_to_string (Delta.Unknown_cell "ghost"))
           c [ Delta.Remove_cell "ghost" ]
   with
  | Delta.Unknown_cell n -> check Alcotest.string "ghost" "ghost" n
  | e -> Alcotest.failf "wrong error: %s" (Delta.error_to_string e));
  (match delta_err "rewire bad pin"
           (Delta.error_to_string (Delta.Bad_pin { cell = "22"; pin = 5 }))
           c [ Delta.Rewire { cell = "22"; pin = 5; net = "16" } ]
   with
  | Delta.Bad_pin { cell; pin } ->
      check Alcotest.string "cell" "22" cell;
      checki "pin" 5 pin
  | e -> Alcotest.failf "wrong error: %s" (Delta.error_to_string e));
  (* Pointing "10" at its own reader closes a combinational cycle; the
     builder rejects the rebuilt circuit. *)
  (match Delta.apply c [ Delta.Rewire { cell = "10"; pin = 0; net = "22" } ] with
  | Error (Delta.Invalid _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Delta.error_to_string e)
  | Ok _ -> Alcotest.fail "cycle-closing rewire accepted")

let test_delta_apply_basic () =
  let c = Generator.c17 () in
  checkb "empty delta is empty" true (Delta.is_empty []);
  checkb "non-empty delta" false
    (Delta.is_empty [ Delta.Set_output { net = "16"; output = true } ]);
  (* New observation point: one more PO, same gates, simulation intact. *)
  match Delta.apply c [ Delta.Set_output { net = "16"; output = true } ] with
  | Error e -> Alcotest.failf "set_output failed: %s" (Delta.error_to_string e)
  | Ok edited ->
      let s = Stats.compute edited in
      checki "outputs" 3 s.Stats.num_outputs;
      checki "gates" 6 s.Stats.num_gates;
      checkb "edited validates" true (Result.is_ok (Circuit.validate edited))

let qcheck_delta_random_applies =
  QCheck.Test.make ~name:"random deltas apply cleanly and canonically" ~count:60
    QCheck.(small_int)
    (fun seed ->
      let rng = Rng.create (seed + 1) in
      let c =
        Generator.random ~rng ~num_inputs:5 ~num_gates:40 ~num_dff:4
          ~num_outputs:6 ()
      in
      let delta = Delta.random ~seed ~frac:0.08 c in
      match Delta.apply c delta with
      | Error e ->
          QCheck.Test.fail_reportf "Delta.random apply failed: %s"
            (Delta.error_to_string e)
      | Ok edited ->
          Result.is_ok (Circuit.validate edited)
          &&
          (* apply rebuilds canonically, so the empty delta on its own
             output is the byte-level identity. *)
          (match Delta.apply edited [] with
          | Ok again ->
              String.equal (Bench_format.to_string edited)
                (Bench_format.to_string again)
          | Error _ -> false))

let qc t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "netlist"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "sample" `Quick test_rng_sample;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "invalid args" `Quick test_rng_invalid;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_basic;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iteri" `Quick test_vec_iteri;
        ] );
      ( "gate",
        [
          Alcotest.test_case "truth tables" `Quick test_gate_truth_tables;
          Alcotest.test_case "string roundtrip" `Quick test_gate_string_roundtrip;
          Alcotest.test_case "bad arity" `Quick test_gate_bad_arity;
          qc qcheck_demorgan;
          qc qcheck_xor_assoc;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "builder basics" `Quick test_builder_basic;
          Alcotest.test_case "duplicate names" `Quick test_builder_duplicate_name;
          Alcotest.test_case "dff feedback" `Quick test_builder_dff_feedback;
          Alcotest.test_case "unconnected dff" `Quick test_builder_unconnected_dff;
          Alcotest.test_case "levels/depth" `Quick test_levels_and_depth;
          Alcotest.test_case "topological order" `Quick test_topological_order;
        ] );
      ( "bench_format",
        [
          Alcotest.test_case "parse c17" `Quick test_bench_parse_c17_text;
          Alcotest.test_case "use before def" `Quick test_bench_use_before_def;
          Alcotest.test_case "sequential feedback" `Quick
            test_bench_sequential_feedback;
          Alcotest.test_case "errors" `Quick test_bench_errors;
          Alcotest.test_case "error line numbers" `Quick test_bench_error_lines;
          Alcotest.test_case "roundtrip" `Quick test_bench_roundtrip;
          qc qcheck_bench_roundtrip;
        ] );
      ( "transform",
        [
          Alcotest.test_case "constant propagation" `Quick test_const_propagation;
          Alcotest.test_case "constant output" `Quick
            test_const_propagation_to_output;
          Alcotest.test_case "buffer collapsing" `Quick test_collapse_buffers;
          Alcotest.test_case "structural hashing" `Quick test_strash;
          Alcotest.test_case "dead sweep" `Quick test_sweep;
          Alcotest.test_case "optimize on generator" `Quick
            test_optimize_shrinks_generator;
          qc qcheck_optimize_equivalence;
        ] );
      ( "blif",
        [
          Alcotest.test_case "parse basic" `Quick test_blif_parse_basic;
          Alcotest.test_case "off-set cover" `Quick test_blif_offset_cover;
          Alcotest.test_case "constants and latches" `Quick
            test_blif_constants_and_latch;
          Alcotest.test_case "errors" `Quick test_blif_errors;
          Alcotest.test_case "error line numbers" `Quick test_blif_error_lines;
          Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip;
          Alcotest.test_case "line continuations" `Quick
            test_blif_continuation_lines;
          qc qcheck_blif_roundtrip;
          qc qcheck_parsers_never_raise;
          qc qcheck_parsers_never_raise_structured;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "parse c17" `Quick test_verilog_parse_c17;
          Alcotest.test_case "assign expressions" `Quick
            test_verilog_assign_expressions;
          Alcotest.test_case "dff forms" `Quick test_verilog_dff_forms;
          Alcotest.test_case "comments and errors" `Quick
            test_verilog_comments_and_errors;
          Alcotest.test_case "roundtrip" `Quick test_verilog_roundtrip;
          qc qcheck_verilog_roundtrip;
        ] );
      ( "simulate+generators",
        [
          Alcotest.test_case "c17 truth table" `Quick test_c17_truth_table;
          qc qcheck_adder_adds;
          qc qcheck_multiplier_multiplies;
          Alcotest.test_case "alu ops" `Quick test_alu_ops;
          Alcotest.test_case "ecc clean path" `Quick test_ecc_no_error;
          Alcotest.test_case "ecc corrects errors" `Quick
            test_ecc_corrects_single_error;
          Alcotest.test_case "adder/comparator" `Quick test_adder_comparator;
          Alcotest.test_case "dff toggle" `Quick test_counter_via_dff;
          Alcotest.test_case "clustered well-formed" `Quick
            test_clustered_wellformed;
          Alcotest.test_case "clustered deterministic" `Quick
            test_clustered_deterministic;
          qc qcheck_random_circuit_valid;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "delta",
        [
          Alcotest.test_case "typed error paths" `Quick test_delta_error_paths;
          Alcotest.test_case "apply basics" `Quick test_delta_apply_basic;
          qc qcheck_delta_random_applies;
        ] );
    ]
