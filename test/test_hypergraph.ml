(* Tests for the hypergraph substrate: bit vectors, hypergraph construction
   and induction, and the replication-aware partition state. *)

let check = Alcotest.check
let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Bitvec                                                             *)
(* ------------------------------------------------------------------ *)

let test_bitvec_basics () =
  checki "full 3" 0b111 (Bitvec.full 3);
  checki "full 0" 0 (Bitvec.full 0);
  checkb "mem" true (Bitvec.mem 1 0b010);
  checkb "not mem" false (Bitvec.mem 0 0b010);
  checki "add" 0b011 (Bitvec.add 0 0b010);
  checki "remove" 0b010 (Bitvec.remove 0 0b011);
  checki "union" 0b111 (Bitvec.union 0b101 0b010);
  checki "inter" 0b100 (Bitvec.inter 0b101 0b110);
  checki "diff" 0b001 (Bitvec.diff 0b101 0b100);
  checki "complement" 0b010 (Bitvec.complement 3 0b101);
  checki "norm" 2 (Bitvec.norm 0b101);
  checki "norm big" 62 (Bitvec.norm (Bitvec.full 62));
  checkb "subset" true (Bitvec.subset 0b100 0b101);
  checkb "not subset" false (Bitvec.subset 0b011 0b101)

let test_bitvec_iter_order () =
  let acc = ref [] in
  Bitvec.iter (fun i -> acc := i :: !acc) 0b10110;
  check Alcotest.(list int) "ascending" [ 1; 2; 4 ] (List.rev !acc);
  check Alcotest.(list int) "to_list" [ 1; 2; 4 ] (Bitvec.to_list 0b10110);
  checki "of_list" 0b10110 (Bitvec.of_list [ 4; 1; 2 ])

let test_bitvec_paper_example () =
  (* Fig. 2 of the paper: A_X1 = [1 1 1 1 0], A_X2 = [0 0 0 1 1].
     psi = |~A_X2 & A_X1| + |~A_X1 & A_X2| = 3 + 1 = 4. *)
  let a_x1 = Bitvec.of_list [ 0; 1; 2; 3 ] in
  let a_x2 = Bitvec.of_list [ 3; 4 ] in
  let w = 5 in
  let only1 = Bitvec.inter a_x1 (Bitvec.complement w a_x2) in
  let only2 = Bitvec.inter a_x2 (Bitvec.complement w a_x1) in
  checki "psi of Fig. 2" 4 (Bitvec.norm only1 + Bitvec.norm only2)

let qcheck_bitvec_complement_involution =
  QCheck.Test.make ~name:"complement is an involution" ~count:500
    QCheck.(pair (int_range 0 20) (int_bound ((1 lsl 20) - 1)))
    (fun (w, raw) ->
      let v = Bitvec.inter raw (Bitvec.full w) in
      Bitvec.equal v (Bitvec.complement w (Bitvec.complement w v)))

let qcheck_bitvec_norm_additive =
  QCheck.Test.make ~name:"norm additive over disjoint union" ~count:500
    QCheck.(pair (int_bound ((1 lsl 16) - 1)) (int_bound ((1 lsl 16) - 1)))
    (fun (a, b) ->
      let b = Bitvec.diff b a in
      Bitvec.norm (Bitvec.union a b) = Bitvec.norm a + Bitvec.norm b)

(* ------------------------------------------------------------------ *)
(* Hypergraph fixtures                                                *)
(* ------------------------------------------------------------------ *)

let spec ?(area = 1) ?(demand = [||]) name inputs outputs supports =
  {
    Hypergraph.s_name = name;
    s_area = area;
    s_demand = demand;
    s_inputs = Array.of_list inputs;
    s_outputs = Array.of_list outputs;
    s_supports = Array.of_list supports;
  }

(* The two-output cell of Fig. 1: inputs a b c (nets 0 1 2), outputs X Y
   (nets 3 4); X depends on {a,b}, Y on {b,c}. Plus consumer cells so nets
   are driven/read meaningfully. *)
let fig1_hypergraph () =
  (* nets: 0=a 1=b 2=c 3=X 4=Y 5=z1 6=z2 *)
  Hypergraph.create ~num_nets:7
    ~external_nets:[ 0; 1; 2 ]
    [
      spec "M" [ 0; 1; 2 ] [ 3; 4 ]
        [ Bitvec.of_list [ 0; 1 ]; Bitvec.of_list [ 1; 2 ] ];
      spec "SX" [ 3 ] [ 5 ] [ Bitvec.of_list [ 0 ] ];
      spec "SY" [ 4 ] [ 6 ] [ Bitvec.of_list [ 0 ] ];
    ]

let test_hypergraph_create () =
  let h = fig1_hypergraph () in
  checki "cells" 3 (Hypergraph.num_cells h);
  checki "area" 3 (Hypergraph.total_area h);
  checki "pins" 9 (Hypergraph.pins h);
  checkb "valid" true (Result.is_ok (Hypergraph.validate h));
  check Alcotest.(array int) "net_cells of b" [| 0 |] h.Hypergraph.net_cells.(1);
  check Alcotest.(array int) "net_cells of X" [| 0; 1 |] h.Hypergraph.net_cells.(3)

let test_hypergraph_connected_nets () =
  let h = fig1_hypergraph () in
  let m = Hypergraph.cell h 0 in
  check Alcotest.(array int) "full copy" [| 0; 1; 2; 3; 4 |]
    (Hypergraph.connected_nets m ~out_mask:0b11);
  check Alcotest.(array int) "X only: a b X" [| 0; 1; 3 |]
    (Hypergraph.connected_nets m ~out_mask:0b01);
  check Alcotest.(array int) "Y only: b c Y" [| 1; 2; 4 |]
    (Hypergraph.connected_nets m ~out_mask:0b10);
  check Alcotest.(array int) "no outputs" [||]
    (Hypergraph.connected_nets m ~out_mask:0)

let test_hypergraph_rejects_bad () =
  let reject name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected rejection")
  in
  reject "two drivers" (fun () ->
      Hypergraph.create ~num_nets:2 ~external_nets:[ 0 ]
        [
          spec "a" [ 0 ] [ 1 ] [ Bitvec.of_list [ 0 ] ];
          spec "b" [ 0 ] [ 1 ] [ Bitvec.of_list [ 0 ] ];
        ]);
  reject "driverless non-external" (fun () ->
      Hypergraph.create ~num_nets:2 ~external_nets:[]
        [ spec "a" [ 0 ] [ 1 ] [ Bitvec.of_list [ 0 ] ] ]);
  reject "unused input pin" (fun () ->
      Hypergraph.create ~num_nets:3 ~external_nets:[ 0; 1 ]
        [ spec "a" [ 0; 1 ] [ 2 ] [ Bitvec.of_list [ 0 ] ] ]);
  reject "support out of range" (fun () ->
      Hypergraph.create ~num_nets:2 ~external_nets:[ 0 ]
        [ spec "a" [ 0 ] [ 1 ] [ Bitvec.of_list [ 1 ] ] ]);
  reject "no outputs" (fun () ->
      Hypergraph.create ~num_nets:1 ~external_nets:[ 0 ]
        [ spec "a" [ 0 ] [] [] ])

let test_hypergraph_induce () =
  let h = fig1_hypergraph () in
  (* Keep only the consumer of X. *)
  let keep = [| false; true; false |] in
  let h', back = Hypergraph.induce h ~keep in
  checki "one cell" 1 (Hypergraph.num_cells h');
  check Alcotest.(array int) "mapping" [| 1 |] back;
  (* Its nets: X (external now: driver dropped) and z1 (not read: but z1 was
     never read by anyone, so it only touches the kept cell). *)
  checki "nets" 2 h'.Hypergraph.num_nets;
  checkb "X external" true h'.Hypergraph.net_external.(0);
  checkb "valid" true (Result.is_ok (Hypergraph.validate h'))

let test_hypergraph_induce_partial_copy () =
  let h = fig1_hypergraph () in
  (* Keep a partial copy of M carrying only output Y, plus SY. *)
  let h', _ = Hypergraph.induce_copies h [ (0, 0b10); (2, 0b1) ] in
  checki "cells" 2 (Hypergraph.num_cells h');
  let m = Hypergraph.cell h' 0 in
  checki "partial copy inputs" 2 (Array.length m.Hypergraph.inputs);
  checki "partial copy outputs" 1 (Array.length m.Hypergraph.outputs);
  checkb "valid" true (Result.is_ok (Hypergraph.validate h'));
  (* b and c feed it and are external; Y is internal (driver + reader kept,
     no dropped incidence). *)
  let ext_count =
    Array.fold_left (fun acc e -> if e then acc + 1 else acc) 0
      h'.Hypergraph.net_external
  in
  checki "externals" 2 ext_count

(* ------------------------------------------------------------------ *)
(* Partition state                                                    *)
(* ------------------------------------------------------------------ *)

(* A deterministic random hypergraph for property tests: [n_cells] cells,
   each with 1-3 outputs and 1-4 inputs drawn from earlier nets. *)
let random_hypergraph seed n_cells =
  let rng = Netlist.Rng.create seed in
  let next_net = ref 0 in
  let fresh_net () =
    let n = !next_net in
    incr next_net;
    n
  in
  (* Seed nets playing the role of chip inputs. *)
  let n_primary = 4 + Netlist.Rng.int rng 4 in
  let primary = List.init n_primary (fun _ -> fresh_net ()) in
  let available = ref (Array.of_list primary) in
  let specs = ref [] in
  for k = 0 to n_cells - 1 do
    let n_out = 1 + Netlist.Rng.int rng 3 in
    let n_in = 1 + Netlist.Rng.int rng 4 in
    let inputs =
      Array.init n_in (fun _ -> Netlist.Rng.pick rng !available)
    in
    let outputs = Array.init n_out (fun _ -> fresh_net ()) in
    (* Random supports covering all input pins. *)
    let supports =
      Array.init n_out (fun _ ->
          let m = ref Bitvec.empty in
          for i = 0 to n_in - 1 do
            if Netlist.Rng.bool rng then m := Bitvec.add i !m
          done;
          !m)
    in
    (* Ensure every output depends on something and every pin is used. *)
    for o = 0 to n_out - 1 do
      if Bitvec.is_empty supports.(o) then
        supports.(o) <- Bitvec.singleton (Netlist.Rng.int rng n_in)
    done;
    for i = 0 to n_in - 1 do
      if not (Array.exists (fun s -> Bitvec.mem i s) supports) then begin
        let o = Netlist.Rng.int rng n_out in
        supports.(o) <- Bitvec.add i supports.(o)
      end
    done;
    specs :=
      spec (Printf.sprintf "c%d" k) (Array.to_list inputs)
        (Array.to_list outputs) (Array.to_list supports)
      :: !specs;
    available := Array.append !available outputs
  done;
  Hypergraph.create ~num_nets:!next_net ~external_nets:primary
    (List.rev !specs)

let random_mask rng full =
  (* Any subset of the full mask. *)
  Bitvec.fold
    (fun i acc -> if Netlist.Rng.bool rng then Bitvec.add i acc else acc)
    full Bitvec.empty

let qcheck_state_consistency =
  QCheck.Test.make ~name:"incremental counters match recompute" ~count:60
    QCheck.(pair small_int (int_range 3 25))
    (fun (seed, n_cells) ->
      let h = random_hypergraph seed n_cells in
      let rng = Netlist.Rng.create (seed + 1000) in
      let st =
        Partition_state.create h ~init_on_b:(fun _ -> Netlist.Rng.bool rng)
      in
      let steps = 40 in
      let ok = ref (Result.is_ok (Partition_state.check_consistency st)) in
      for _ = 1 to steps do
        let c = Netlist.Rng.int rng (Hypergraph.num_cells h) in
        let m = random_mask rng (Partition_state.full_mask st c) in
        ignore (Partition_state.apply st c m);
        if not (Result.is_ok (Partition_state.check_consistency st)) then
          ok := false
      done;
      !ok)

let qcheck_eval_predicts_apply =
  QCheck.Test.make ~name:"eval = apply delta, and counters shift by it"
    ~count:60
    QCheck.(pair small_int (int_range 3 25))
    (fun (seed, n_cells) ->
      let h = random_hypergraph seed n_cells in
      let rng = Netlist.Rng.create (seed + 2000) in
      let st = Partition_state.create h ~init_on_b:(fun c -> c mod 2 = 0) in
      let ok = ref true in
      for _ = 1 to 30 do
        let c = Netlist.Rng.int rng (Hypergraph.num_cells h) in
        let m = random_mask rng (Partition_state.full_mask st c) in
        let predicted = Partition_state.eval st c m in
        let cut0 = Partition_state.cut st in
        let ta0 = Partition_state.terminals st Partition_state.A in
        let tb0 = Partition_state.terminals st Partition_state.B in
        let aa0 = Partition_state.area st Partition_state.A in
        let ab0 = Partition_state.area st Partition_state.B in
        let actual = Partition_state.apply st c m in
        if predicted <> actual then ok := false;
        if Partition_state.cut st <> cut0 + predicted.Partition_state.d_cut then
          ok := false;
        if
          Partition_state.terminals st Partition_state.A
          <> ta0 + predicted.Partition_state.d_term_a
        then ok := false;
        if
          Partition_state.terminals st Partition_state.B
          <> tb0 + predicted.Partition_state.d_term_b
        then ok := false;
        if
          Partition_state.area st Partition_state.A
          <> aa0 + predicted.Partition_state.d_area_a
        then ok := false;
        if
          Partition_state.area st Partition_state.B
          <> ab0 + predicted.Partition_state.d_area_b
        then ok := false
      done;
      !ok)

let qcheck_apply_involution =
  QCheck.Test.make ~name:"applying a mask then the old mask restores counters"
    ~count:60
    QCheck.(pair small_int (int_range 3 20))
    (fun (seed, n_cells) ->
      let h = random_hypergraph seed n_cells in
      let rng = Netlist.Rng.create (seed + 3000) in
      let st = Partition_state.create h ~init_on_b:(fun _ -> false) in
      let ok = ref true in
      for _ = 1 to 20 do
        let c = Netlist.Rng.int rng (Hypergraph.num_cells h) in
        let old_mask = Partition_state.mask st c in
        let m = random_mask rng (Partition_state.full_mask st c) in
        let cut0 = Partition_state.cut st in
        ignore (Partition_state.apply st c m);
        ignore (Partition_state.apply st c old_mask);
        if Partition_state.cut st <> cut0 then ok := false;
        if not (Bitvec.equal (Partition_state.mask st c) old_mask) then
          ok := false
      done;
      !ok)

let qcheck_eval_into_matches_eval =
  QCheck.Test.make ~name:"eval_into writes exactly eval's delta" ~count:60
    QCheck.(pair small_int (int_range 3 25))
    (fun (seed, n_cells) ->
      let h = random_hypergraph seed n_cells in
      let rng = Netlist.Rng.create (seed + 4000) in
      let st = Partition_state.create h ~init_on_b:(fun c -> c mod 3 = 0) in
      let sc = Partition_state.make_scratch () in
      let ok = ref true in
      for _ = 1 to 40 do
        let c = Netlist.Rng.int rng (Hypergraph.num_cells h) in
        let m = random_mask rng (Partition_state.full_mask st c) in
        let d = Partition_state.eval st c m in
        Partition_state.eval_into st c m sc;
        if
          sc.Partition_state.sc_cut <> d.Partition_state.d_cut
          || sc.Partition_state.sc_term_a <> d.Partition_state.d_term_a
          || sc.Partition_state.sc_term_b <> d.Partition_state.d_term_b
          || sc.Partition_state.sc_area_a <> d.Partition_state.d_area_a
          || sc.Partition_state.sc_area_b <> d.Partition_state.d_area_b
        then ok := false;
        (* Occasionally commit so later iterations see varied states. *)
        if Netlist.Rng.int rng 3 = 0 then ignore (Partition_state.apply st c m)
      done;
      !ok)

let qcheck_changed_nets_exact =
  QCheck.Test.make
    ~name:"iter_changed_nets = nets whose side category crossed 0/1/2"
    ~count:60
    QCheck.(pair small_int (int_range 3 25))
    (fun (seed, n_cells) ->
      let h = random_hypergraph seed n_cells in
      let rng = Netlist.Rng.create (seed + 5000) in
      let st = Partition_state.create h ~init_on_b:(fun c -> c mod 2 = 1) in
      let nn = h.Hypergraph.num_nets in
      let cat side net = min (Partition_state.connections st side net) 2 in
      let ok = ref true in
      for _ = 1 to 40 do
        let before =
          Array.init nn (fun net ->
              (cat Partition_state.A net, cat Partition_state.B net))
        in
        let c = Netlist.Rng.int rng (Hypergraph.num_cells h) in
        let m = random_mask rng (Partition_state.full_mask st c) in
        ignore (Partition_state.apply st c m);
        let expected = ref [] in
        for net = nn - 1 downto 0 do
          if before.(net) <> (cat Partition_state.A net, cat Partition_state.B net)
          then expected := net :: !expected
        done;
        let reported = ref [] in
        Partition_state.iter_changed_nets st (fun net ->
            reported := net :: !reported);
        let raw = !reported in
        let sorted = List.sort_uniq compare raw in
        (* No duplicates in the report, exactly the category-crossing
           nets, and num_changed_nets agrees. *)
        if List.length raw <> List.length sorted then ok := false;
        if sorted <> !expected then ok := false;
        if Partition_state.num_changed_nets st <> List.length sorted then
          ok := false
      done;
      !ok)

(* Reconstruction of the paper's Fig. 4 worked example. The cell M has five
   inputs i1..i5 and two outputs X1, X2 with A_X1 = {i1,i3,i4,i5} and
   A_X2 = {i2}. i1 and i2 are driven from side B (cut, critical); i3..i5
   are driven on side A (uncut, critical); X1 is read on A (uncut,
   critical); X2 is read on B (cut, critical). The paper's numbers: initial
   cut 3; single move gain -1 (cut 4); functional replication gain +2
   (cut 1). *)
let fig4_hypergraph () =
  (* nets: 0..4 = i1..i5, 5 = X1, 6 = X2, 7..8 = reader outputs *)
  let no_input_cell name out = spec name [] [ out ] [ Bitvec.empty ] in
  Hypergraph.create ~num_nets:9 ~external_nets:[ 7; 8 ]
    [
      spec "M" [ 0; 1; 2; 3; 4 ] [ 5; 6 ]
        [ Bitvec.of_list [ 0; 2; 3; 4 ]; Bitvec.of_list [ 1 ] ];
      (* cell 0 *)
      no_input_cell "D1" 0;
      (* cell 1, side B *)
      no_input_cell "D2" 1;
      (* cell 2, side B *)
      no_input_cell "D3" 2;
      (* cell 3, side A *)
      no_input_cell "D4" 3;
      (* cell 4, side A *)
      no_input_cell "D5" 4;
      (* cell 5, side A *)
      spec "RX1" [ 5 ] [ 7 ] [ Bitvec.of_list [ 0 ] ];
      (* cell 6, side A *)
      spec "RX2" [ 6 ] [ 8 ] [ Bitvec.of_list [ 0 ] ];
      (* cell 7, side B *)
    ]

let fig4_state () =
  let h = fig4_hypergraph () in
  let on_b = function 1 | 2 | 7 -> true | _ -> false in
  (h, Partition_state.create h ~init_on_b:on_b)

let test_state_fig4_initial_cut () =
  let _, st = fig4_state () in
  checki "initial cut is 3 (i1, i2, X2)" 3 (Partition_state.cut st)

let test_state_fig4_single_move () =
  (* Fig. 4, option 1: moving M to B raises the cut to 4 (gain -1). *)
  let _, st = fig4_state () in
  let d = Partition_state.eval st 0 (Partition_state.full_mask st 0) in
  checki "single-move gain = -1" 1 d.Partition_state.d_cut;
  ignore (Partition_state.apply st 0 (Partition_state.full_mask st 0));
  checki "cut becomes 4" 4 (Partition_state.cut st)

let test_state_fig4_functional_replication () =
  (* Fig. 4, option 3: replicate M with output X2 (index 1) migrating to B.
     The replica reads only i2 (= A_X2); nets X2 and i2 both leave the cut:
     gain +2, cut 3 -> 1. *)
  let _, st = fig4_state () in
  let d = Partition_state.eval st 0 (Bitvec.singleton 1) in
  checki "functional replication gain = +2" (-2) d.Partition_state.d_cut;
  ignore (Partition_state.apply st 0 (Bitvec.singleton 1));
  checki "cut becomes 1" 1 (Partition_state.cut st);
  checkb "M replicated" true (Partition_state.is_replicated st 0);
  checki "one replicated cell" 1 (Partition_state.num_replicated st);
  (* Migrating the other output instead is a bad idea: the replica would
     need i1, i3, i4, i5 on B and X1 becomes cut. *)
  let st2 = snd (fig4_state ()) in
  let d2 = Partition_state.eval st2 0 (Bitvec.singleton 0) in
  checki "migrating X1 instead loses 3" 3 d2.Partition_state.d_cut

let test_state_fig4_unreplication () =
  let _, st = fig4_state () in
  ignore (Partition_state.apply st 0 (Bitvec.singleton 1));
  let cut_replicated = Partition_state.cut st in
  (* Merging the copies back onto side A restores the initial situation. *)
  ignore (Partition_state.apply st 0 Bitvec.empty);
  checkb "unreplicated" false (Partition_state.is_replicated st 0);
  checki "cut restored" 3 (Partition_state.cut st);
  checkb "replication had helped" true (cut_replicated < 3)

let test_state_areas_and_replication () =
  let _, st = fig4_state () in
  checki "area A: M + D3 D4 D5 + RX1" 5 (Partition_state.area st Partition_state.A);
  checki "area B: D1 D2 RX2" 3 (Partition_state.area st Partition_state.B);
  ignore (Partition_state.apply st 0 (Bitvec.singleton 1));
  (* Replication pays one extra CLB on side B. *)
  checki "area A unchanged" 5 (Partition_state.area st Partition_state.A);
  checki "area B + 1" 4 (Partition_state.area st Partition_state.B)

let test_state_terminals () =
  let h = fig1_hypergraph () in
  (* All on A: terminals of A = external nets touching A = a, b, c. *)
  let st = Partition_state.create h ~init_on_b:(fun _ -> false) in
  checki "term A" 3 (Partition_state.terminals st Partition_state.A);
  checki "term B" 0 (Partition_state.terminals st Partition_state.B);
  (* Move SY to B: net Y crosses (term on both), B gains terminal Y. *)
  ignore (Partition_state.apply st 2 (Bitvec.full 1));
  checki "term A after" 4 (Partition_state.terminals st Partition_state.A);
  checki "term B after" 1 (Partition_state.terminals st Partition_state.B)

let test_side_copies () =
  let h = fig1_hypergraph () in
  let st = Partition_state.create h ~init_on_b:(fun c -> c = 2) in
  ignore (Partition_state.apply st 0 (Bitvec.singleton 1));
  let copies_a = Partition_state.side_copies st Partition_state.A in
  let copies_b = Partition_state.side_copies st Partition_state.B in
  check
    Alcotest.(list (pair int int))
    "A holds M(X) and SX" [ (0, 0b01); (1, 0b1) ] copies_a;
  check
    Alcotest.(list (pair int int))
    "B holds M(Y) and SY" [ (0, 0b10); (2, 0b1) ] copies_b

let qcheck_induction_matches_terminals =
  (* The invariant the k-way driver rests on: inducing one side's copies
     yields a sub-hypergraph whose external-net count equals that side's
     terminal count in the bipartition state. *)
  QCheck.Test.make ~name:"induced externality = side terminal count" ~count:40
    QCheck.(pair small_int (int_range 4 20))
    (fun (seed, n_cells) ->
      let h = Test_util.random_hypergraph seed n_cells in
      let rng = Netlist.Rng.create (seed + 4000) in
      let st = Partition_state.create h ~init_on_b:(fun _ -> Netlist.Rng.bool rng) in
      (* Random replication too. *)
      for _ = 1 to 15 do
        let c = Netlist.Rng.int rng (Hypergraph.num_cells h) in
        let m = Test_util.random_mask rng (Partition_state.full_mask st c) in
        ignore (Partition_state.apply st c m)
      done;
      let check side =
        match Partition_state.side_copies st side with
        | [] -> true
        | specs ->
            let sub, _ = Hypergraph.induce_copies h specs in
            let ext =
              Array.fold_left
                (fun acc e -> if e then acc + 1 else acc)
                0 sub.Hypergraph.net_external
            in
            ext = Partition_state.terminals st side
      in
      check Partition_state.A && check Partition_state.B)

let qcheck_projection_identity =
  (* Projecting any labelling onto the unedited hypergraph must be the
     identity: all cells match and keep their labels, nothing is dirty
     beyond what base_dirty forces, no net counts as changed. *)
  QCheck.Test.make ~name:"projection onto unedited hypergraph is identity"
    ~count:60
    QCheck.(pair small_int (int_range 4 24))
    (fun (seed, n_cells) ->
      let h = Test_util.random_hypergraph seed n_cells in
      let n = Hypergraph.num_cells h in
      let rng = Netlist.Rng.create (seed + 9000) in
      let labels = Array.init n (fun _ -> Netlist.Rng.int rng 4) in
      let p = Projection.project ~base:h ~base_labels:labels h in
      let forced = Array.init n (fun _ -> Netlist.Rng.bool rng) in
      let pf = Projection.project ~base:h ~base_labels:labels ~base_dirty:forced h in
      p.Projection.labels = labels
      && Array.for_all not p.Projection.dirty
      && p.Projection.matched = n
      && p.Projection.added = 0
      && p.Projection.dropped = 0
      && p.Projection.changed_nets = 0
      && pf.Projection.labels = labels
      && pf.Projection.dirty = forced
      && pf.Projection.matched = n && pf.Projection.changed_nets = 0)

let qc t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "hypergraph"
    [
      ( "bitvec",
        [
          Alcotest.test_case "basics" `Quick test_bitvec_basics;
          Alcotest.test_case "iteration order" `Quick test_bitvec_iter_order;
          Alcotest.test_case "paper Fig. 2 psi" `Quick test_bitvec_paper_example;
          qc qcheck_bitvec_complement_involution;
          qc qcheck_bitvec_norm_additive;
        ] );
      ( "hypergraph",
        [
          Alcotest.test_case "create + accessors" `Quick test_hypergraph_create;
          Alcotest.test_case "connected nets of partial copies" `Quick
            test_hypergraph_connected_nets;
          Alcotest.test_case "rejects malformed" `Quick test_hypergraph_rejects_bad;
          Alcotest.test_case "induce" `Quick test_hypergraph_induce;
          Alcotest.test_case "induce partial copy" `Quick
            test_hypergraph_induce_partial_copy;
        ] );
      ( "partition_state",
        [
          Alcotest.test_case "Fig. 4 initial cut" `Quick test_state_fig4_initial_cut;
          Alcotest.test_case "Fig. 4 single move (gain -1)" `Quick
            test_state_fig4_single_move;
          Alcotest.test_case "Fig. 4 functional replication (gain +2)" `Quick
            test_state_fig4_functional_replication;
          Alcotest.test_case "Fig. 4 unreplication" `Quick
            test_state_fig4_unreplication;
          Alcotest.test_case "areas under replication" `Quick
            test_state_areas_and_replication;
          Alcotest.test_case "terminal counting" `Quick test_state_terminals;
          Alcotest.test_case "side copies" `Quick test_side_copies;
          qc qcheck_state_consistency;
          qc qcheck_induction_matches_terminals;
          qc qcheck_eval_predicts_apply;
          qc qcheck_apply_involution;
          qc qcheck_eval_into_matches_eval;
          qc qcheck_changed_nets_exact;
        ] );
      ("projection", [ qc qcheck_projection_identity ]);
    ]
