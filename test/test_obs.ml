(* Tests for the observability layer: counters, span timers, event
   recording, the JSON emitter, and the determinism contract the engine's
   telemetry promises (same seed -> byte-identical snapshots modulo
   elapsed-time fields). *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Json                                                               *)
(* ------------------------------------------------------------------ *)

let test_json_rendering () =
  let j =
    Obs.Json.Obj
      [
        ("a", Obs.Json.Int 3);
        ("b", Obs.Json.List [ Obs.Json.Bool true; Obs.Json.Null ]);
        ("c", Obs.Json.Float 1.5);
        ("d", Obs.Json.String "x\"y\\z\n");
      ]
  in
  let s = Obs.Json.to_string j in
  checkb "escapes quote" true
    (String.length s > 0
    && (let sub = "\"x\\\"y\\\\z\\n\"" in
        let rec find i =
          i + String.length sub <= String.length s
          && (String.sub s i (String.length sub) = sub || find (i + 1))
        in
        find 0));
  checks "empty obj" "{}" (Obs.Json.to_string (Obs.Json.Obj []));
  checks "empty list" "[]" (Obs.Json.to_string (Obs.Json.List []));
  (* Floats always read back as floats; non-finite values become null. *)
  checks "integral float keeps a point" "2.0"
    (Obs.Json.to_string (Obs.Json.Float 2.0));
  checks "nan is null" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  checks "inf is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let test_json_accessors () =
  let j = Obs.Json.Obj [ ("k", Obs.Json.Int 7); ("s", Obs.Json.String "v") ] in
  checkb "member hit" true
    (Obs.Json.member "k" j = Some (Obs.Json.Int 7));
  checkb "member miss" true (Obs.Json.member "zz" j = None);
  checkb "member on non-obj" true (Obs.Json.member "k" Obs.Json.Null = None);
  checkb "to_int" true (Obs.Json.to_int (Obs.Json.Int 4) = Some 4);
  checkb "to_float coerces int" true
    (Obs.Json.to_float (Obs.Json.Int 4) = Some 4.0);
  checkb "to_str" true (Obs.Json.to_str (Obs.Json.String "v") = Some "v")

(* ------------------------------------------------------------------ *)
(* Sink: counters, spans, events                                      *)
(* ------------------------------------------------------------------ *)

let test_noop_sink () =
  let t = Obs.noop in
  checkb "disabled" false (Obs.enabled t);
  Obs.incr t "x";
  Obs.event t "e" [];
  checki "span passes value through" 41 (Obs.span t "s" (fun () -> 41));
  checks "no span path" "" (Obs.current_span t);
  let s = Obs.snapshot t in
  checkb "empty snapshot" true
    (s.Obs.Snapshot.counters = [] && s.Obs.Snapshot.timers = []
   && s.Obs.Snapshot.events = [])

let test_counters () =
  let t = Obs.create () in
  checkb "enabled" true (Obs.enabled t);
  Obs.incr t "b";
  Obs.incr t ~by:3 "a";
  Obs.incr t "b";
  let s = Obs.snapshot t in
  Alcotest.check
    Alcotest.(list (pair string int))
    "accumulated and sorted"
    [ ("a", 3); ("b", 2) ]
    s.Obs.Snapshot.counters

let test_span_nesting () =
  let t = Obs.create () in
  let inner_path = ref "" in
  let v =
    Obs.span t "outer" (fun () ->
        Obs.span t "inner" (fun () ->
            inner_path := Obs.current_span t;
            Obs.event t "probe" [ ("k", Obs.Json.Int 1) ];
            7))
  in
  checki "value through nested spans" 7 v;
  checks "nested path" "outer/inner" !inner_path;
  checks "stack popped" "" (Obs.current_span t);
  let s = Obs.snapshot t in
  let keys = List.map fst s.Obs.Snapshot.timers in
  checkb "outer timer" true (List.mem "outer_secs" keys);
  checkb "inner timer" true (List.mem "outer/inner_secs" keys);
  (match s.Obs.Snapshot.events with
  | [ e ] ->
      checks "event name" "probe" e.Obs.Snapshot.name;
      checkb "span recorded on event" true
        (List.assoc_opt "span" e.Obs.Snapshot.fields
        = Some (Obs.Json.String "outer/inner"));
      checkb "payload preserved" true
        (List.assoc_opt "k" e.Obs.Snapshot.fields = Some (Obs.Json.Int 1))
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l));
  (* Re-entering a span accumulates into the same timer key. *)
  Obs.span t "outer" (fun () -> ());
  let s2 = Obs.snapshot t in
  checki "timer keys stable" (List.length s.Obs.Snapshot.timers)
    (List.length s2.Obs.Snapshot.timers)

let test_span_exception_safety () =
  let t = Obs.create () in
  (try Obs.span t "boom" (fun () -> failwith "x") with Failure _ -> ());
  checks "stack popped after raise" "" (Obs.current_span t);
  checkb "timer still recorded" true
    (List.mem_assoc "boom_secs" (Obs.snapshot t).Obs.Snapshot.timers)

let test_event_order () =
  let t = Obs.create () in
  for i = 0 to 4 do
    Obs.event t "e" [ ("i", Obs.Json.Int i) ]
  done;
  let s = Obs.snapshot t in
  let order =
    List.map
      (fun e ->
        match List.assoc "i" e.Obs.Snapshot.fields with
        | Obs.Json.Int i -> i
        | _ -> -1)
      s.Obs.Snapshot.events
  in
  Alcotest.check Alcotest.(list int) "recording order" [ 0; 1; 2; 3; 4 ] order

(* ------------------------------------------------------------------ *)
(* fork / merge_into (the parallel-telemetry primitives)              *)
(* ------------------------------------------------------------------ *)

let test_fork_merge_reproduces_sequential_stream () =
  (* Recording through forked children merged in fork order must be
     indistinguishable from recording everything into one sink — that is
     the contract Kway's parallel multi-start relies on. *)
  let record t tag =
    Obs.incr t "shared";
    Obs.incr t ~by:2 (tag ^ ".only");
    Obs.span t tag (fun () ->
        Obs.event t "probe" [ ("tag", Obs.Json.String tag) ])
  in
  let sequential = Obs.create () in
  Obs.span sequential "root" (fun () ->
      List.iter (record sequential) [ "a"; "b"; "c" ]);
  let parent = Obs.create () in
  Obs.span parent "root" (fun () ->
      let children =
        List.map
          (fun tag ->
            let child = Obs.fork parent in
            record child tag;
            child)
          [ "a"; "b"; "c" ]
      in
      List.iter (Obs.merge_into ~into:parent) children);
  let scrubbed t =
    Obs.Json.to_string
      (Obs.Snapshot.scrub_elapsed (Obs.Snapshot.to_json (Obs.snapshot t)))
  in
  checks "forked+merged equals sequential" (scrubbed sequential)
    (scrubbed parent);
  (* A forked child inherits the parent's span path at fork time. *)
  Obs.span parent "outer" (fun () ->
      let child = Obs.fork parent in
      checks "child inherits span path" "outer" (Obs.current_span child));
  (* Merging into a noop sink is a no-op, not an error. *)
  Obs.merge_into ~into:Obs.noop (Obs.fork Obs.noop)

(* ------------------------------------------------------------------ *)
(* Snapshot JSON and the elapsed-time scrub                           *)
(* ------------------------------------------------------------------ *)

let test_snapshot_json_shape () =
  let t = Obs.create () in
  Obs.incr t "c";
  Obs.span t "s" (fun () -> Obs.event t "e" [ ("x", Obs.Json.Int 1) ]);
  let j = Obs.Snapshot.to_json (Obs.snapshot t) in
  checkb "counters object" true
    (match Obs.Json.member "counters" j with
    | Some (Obs.Json.Obj [ ("c", Obs.Json.Int 1) ]) -> true
    | _ -> false);
  checkb "timers object keyed _secs" true
    (match Obs.Json.member "timers" j with
    | Some (Obs.Json.Obj [ ("s_secs", Obs.Json.Float _) ]) -> true
    | _ -> false);
  checkb "events list with event name first" true
    (match Obs.Json.member "events" j with
    | Some (Obs.Json.List [ Obs.Json.Obj (("event", Obs.Json.String "e") :: _) ])
      ->
        true
    | _ -> false)

let test_scrub_elapsed_is_minimal () =
  let j =
    Obs.Json.Obj
      [
        ("elapsed_secs", Obs.Json.Float 1.23);
        ("not_time", Obs.Json.Float 1.23);
        ("seconds", Obs.Json.Int 9);
        ( "nested",
          Obs.Json.List
            [ Obs.Json.Obj [ ("t_secs", Obs.Json.Float 0.5); ("n", Obs.Json.Int 1) ] ]
        );
        (* A wall-derived histogram: the whole value is masked, count
           included — its buckets depend on timing too. *)
        ( "fm.moves_per_sec",
          Obs.Json.Obj [ ("count", Obs.Json.Int 4); ("p50", Obs.Json.Float 9.0) ]
        );
        ("per_second", Obs.Json.Float 2.0);
        ("clb_util", Obs.Json.Float 0.75);
        ("utility", Obs.Json.Float 3.0);
      ]
  in
  let expect =
    Obs.Json.Obj
      [
        ("elapsed_secs", Obs.Json.Null);
        ("not_time", Obs.Json.Float 1.23);
        ("seconds", Obs.Json.Int 9);
        ( "nested",
          Obs.Json.List
            [ Obs.Json.Obj [ ("t_secs", Obs.Json.Null); ("n", Obs.Json.Int 1) ] ]
        );
        ("fm.moves_per_sec", Obs.Json.Null);
        ("per_second", Obs.Json.Float 2.0);
        ("clb_util", Obs.Json.Null);
        ("utility", Obs.Json.Float 3.0);
      ]
  in
  checks "only _secs/_per_sec/_util keys nulled, order kept"
    (Obs.Json.to_string expect)
    (Obs.Json.to_string (Obs.Snapshot.scrub_elapsed j))

(* ------------------------------------------------------------------ *)
(* Histograms                                                         *)
(* ------------------------------------------------------------------ *)

let test_histogram_basics () =
  let t = Obs.create () in
  List.iter (Obs.observe t "h") [ 0; 1; 1; 2; 3; 5; -3; 100 ];
  let s = Obs.snapshot t in
  match s.Obs.Snapshot.histograms with
  | [ ("h", h) ] ->
      checki "count" 8 h.Obs.Snapshot.count;
      checki "sum" 109 h.Obs.Snapshot.sum;
      checki "bucket counts sum to count" h.Obs.Snapshot.count
        (List.fold_left (fun acc (_, n) -> acc + n) 0 h.Obs.Snapshot.buckets);
      checkb "buckets sorted by index" true
        (let idx = List.map fst h.Obs.Snapshot.buckets in
         List.sort compare idx = idx);
      (* 0 -> bucket 0; 1,1 -> bucket 1; 2,3 -> bucket 2; 5 -> bucket 3;
         100 -> bucket 7; -3 -> bucket -2. *)
      Alcotest.check
        Alcotest.(list (pair int int))
        "exact buckets"
        [ (-2, 1); (0, 1); (1, 2); (2, 2); (3, 1); (7, 1) ]
        h.Obs.Snapshot.buckets
  | l -> Alcotest.failf "expected 1 histogram, got %d" (List.length l)

let test_histogram_json_shape () =
  let t = Obs.create () in
  Obs.observe t "h" 5;
  Obs.observe t "h" 6;
  let j = Obs.Snapshot.to_json (Obs.snapshot t) in
  checkb "histograms object with labelled buckets" true
    (match Obs.Json.member "histograms" j with
    | Some
        (Obs.Json.Obj
          [
            ( "h",
              Obs.Json.Obj
                [
                  ("count", Obs.Json.Int 2);
                  ("sum", Obs.Json.Int 11);
                  ("buckets", Obs.Json.Obj [ ("[4,7]", Obs.Json.Int 2) ]);
                ] );
          ]) ->
        true
    | _ -> false);
  (* Noop sinks ignore observations. *)
  Obs.observe Obs.noop "h" 1;
  checkb "noop has no histograms" true
    ((Obs.snapshot Obs.noop).Obs.Snapshot.histograms = [])

let test_bucket_soundness =
  (* Totality and disjointness of the signed log2 bucketing: every int is
     inside the bounds of its own bucket and outside every neighbour's. *)
  QCheck.Test.make ~name:"every observation lands in exactly one bucket"
    ~count:2000
    QCheck.(
      oneof
        [
          int;
          int_range (-1000) 1000;
          oneofl [ 0; 1; -1; max_int; min_int; max_int - 1; min_int + 1 ];
        ])
    (fun v ->
      let b = Obs.bucket_of v in
      let lo, hi = Obs.bucket_bounds b in
      if not (lo <= v && v <= hi) then
        QCheck.Test.fail_reportf "%d outside its bucket %d = [%d,%d]" v b lo hi;
      List.iter
        (fun db ->
          let b' = b + db in
          (* Disjointness holds across bucket_of's image; indices beyond
             it clamp to the extreme buckets, so skip them. *)
          if b' >= -63 && b' <= 62 then begin
            let lo', hi' = Obs.bucket_bounds b' in
            if lo' <= v && v <= hi' then
              QCheck.Test.fail_reportf "%d also inside bucket %d = [%d,%d]" v
                b' lo' hi'
          end)
        [ -2; -1; 1; 2 ];
      true)

let test_histogram_fork_merge =
  (* Merging forked sinks sums counts, sums and per-bucket tallies exactly
     — the histogram half of the parallel-telemetry contract. *)
  QCheck.Test.make ~name:"merge_into sums histogram buckets exactly" ~count:100
    QCheck.(pair (list small_signed_int) (list (list small_signed_int)))
    (fun (parent_obs, children_obs) ->
      let direct = Obs.create () in
      List.iter (Obs.observe direct "h") parent_obs;
      List.iter (List.iter (Obs.observe direct "h")) children_obs;
      let parent = Obs.create () in
      List.iter (Obs.observe parent "h") parent_obs;
      let children =
        List.map
          (fun obs ->
            let c = Obs.fork parent in
            List.iter (Obs.observe c "h") obs;
            c)
          children_obs
      in
      List.iter (Obs.merge_into ~into:parent) children;
      (Obs.snapshot parent).Obs.Snapshot.histograms
      = (Obs.snapshot direct).Obs.Snapshot.histograms)

let test_pp_empty_sections () =
  (* Every section prints an explicit "(none)" when empty, so piped
     output keeps a stable shape. *)
  let render t = Format.asprintf "%a" Obs.Snapshot.pp (Obs.snapshot t) in
  let contains hay needle =
    let n = String.length needle in
    let rec find i =
      i + n <= String.length hay
      && (String.sub hay i n = needle || find (i + 1))
    in
    find 0
  in
  let empty = render (Obs.create ()) in
  List.iter
    (fun section ->
      checkb (section ^ " (none) line") true
        (contains empty (section ^ "  (none)")))
    [ "counters"; "timers"; "histograms"; "events" ];
  (* And a non-empty sink does not print (none) for populated sections. *)
  let t = Obs.create () in
  Obs.incr t "c";
  Obs.observe t "h" 3;
  let out = render t in
  checkb "counters populated" false (contains out "counters  (none)");
  checkb "histograms populated" false (contains out "histograms  (none)");
  checkb "events still (none)" true (contains out "events  (none)")

(* ------------------------------------------------------------------ *)
(* Tracing                                                            *)
(* ------------------------------------------------------------------ *)

let test_trace_spans () =
  let t = Obs.create ~trace:true () in
  checkb "tracing on" true (Obs.Trace.tracing t);
  checkb "noop not tracing" false (Obs.Trace.tracing Obs.noop);
  checkb "plain sink not tracing" false (Obs.Trace.tracing (Obs.create ()));
  Obs.span t "a" (fun () ->
      let child = Obs.fork ~pid:3 ~track:2 t in
      Obs.span child "b" (fun () -> Obs.span child "c" ignore);
      Obs.merge_into ~into:t child);
  let spans = Obs.Trace.spans t in
  checki "three spans" 3 (List.length spans);
  let find name =
    List.find (fun s -> s.Obs.Trace.span_name = name) spans
  in
  let a = find "a" and b = find "a/b" and c = find "a/b/c" in
  checki "parent pid defaults to 0" 0 a.Obs.Trace.span_pid;
  checki "parent tid defaults to 0" 0 a.Obs.Trace.span_tid;
  checki "forked pid" 3 b.Obs.Trace.span_pid;
  checki "forked tid" 2 b.Obs.Trace.span_tid;
  checki "nested span keeps lane" 3 c.Obs.Trace.span_pid;
  List.iter
    (fun s ->
      checkb
        (s.Obs.Trace.span_name ^ " well-formed")
        true
        (s.Obs.Trace.begin_secs >= 0.
        && s.Obs.Trace.end_secs >= s.Obs.Trace.begin_secs
        && s.Obs.Trace.gc.Obs.Trace.minor_collections >= 0))
    spans;
  (* Sorted by begin time, enclosing span first on ties. *)
  checkb "sorted by begin" true
    (let rec mono = function
       | x :: (y :: _ as rest) ->
           x.Obs.Trace.begin_secs <= y.Obs.Trace.begin_secs && mono rest
       | _ -> true
     in
     mono spans);
  checks "enclosing first" "a" (List.hd spans).Obs.Trace.span_name;
  (* The trace document has the Chrome trace-event shape; the stats
     document must not contain it. *)
  let trace_doc = Obs.Json.to_string (Obs.Trace.to_json t) in
  let contains hay needle =
    let n = String.length needle in
    let rec find i =
      i + n <= String.length hay
      && (String.sub hay i n = needle || find (i + 1))
    in
    find 0
  in
  checkb "traceEvents present" true (contains trace_doc "\"traceEvents\"");
  checkb "complete events" true (contains trace_doc "\"ph\": \"X\"");
  checkb "thread metadata" true (contains trace_doc "thread_name");
  let stats_doc = Obs.Json.to_string (Obs.Snapshot.to_json (Obs.snapshot t)) in
  checkb "trace absent from stats" false (contains stats_doc "traceEvents");
  checkb "no wall timestamps in stats" false (contains stats_doc "begin_secs")

let test_trace_off_records_nothing () =
  let t = Obs.create () in
  Obs.span t "a" ignore;
  checki "no spans without trace:true" 0 (List.length (Obs.Trace.spans t));
  checki "noop has no spans" 0 (List.length (Obs.Trace.spans Obs.noop))

(* ------------------------------------------------------------------ *)
(* Determinism regression on the real engine                          *)
(* ------------------------------------------------------------------ *)

let test_kway_snapshot_deterministic () =
  (* Two same-seed partition calls must serialise byte-identically once the
     ["_secs"] elapsed-time fields are scrubbed — those fields are the only
     allowed difference. The multiplier needs several devices, so the
     telemetry exercises splits, device attempts and F-M passes. *)
  let h =
    Techmap.Mapper.to_hypergraph
      (Techmap.Mapper.map (Netlist.Generator.multiplier ~bits:16 ()))
  in
  let options = Core.Kway.Options.make ~runs:2 ~fm_attempts:2 () in
  let shot () =
    let obs = Obs.create () in
    (match Core.Kway.partition ~obs ~options ~library:Fpga.Library.xc3000 h with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    let snap = Obs.snapshot obs in
    let json = Obs.Snapshot.to_json snap in
    (snap, Obs.Json.to_string (Obs.Snapshot.scrub_elapsed json))
  in
  let snap_a, a = shot () in
  let _, b = shot () in
  checks "byte-identical after elapsed scrub" a b;
  let names =
    List.sort_uniq compare
      (List.map (fun e -> e.Obs.Snapshot.name) snap_a.Obs.Snapshot.events)
  in
  checkb "has fm.pass events" true (List.mem "fm.pass" names);
  checkb "has device-window attempts" true (List.mem "kway.device_attempt" names);
  checkb "has split events" true (List.mem "kway.split" names);
  (* The scrub really only touched wall-derived keys: structure and every
     non-_secs/_per_sec leaf agree between the scrubbed and raw
     documents. *)
  let ends_with k suf =
    let n = String.length k and m = String.length suf in
    n >= m && String.sub k (n - m) m = suf
  in
  let rec agrees raw scrubbed =
    match (raw, scrubbed) with
    | Obs.Json.Obj ra, Obs.Json.Obj sa ->
        List.length ra = List.length sa
        && List.for_all2
             (fun (kr, vr) (ks, vs) ->
               kr = ks
               &&
               if ends_with kr "_secs" || ends_with kr "_per_sec" then
                 vs = Obs.Json.Null
               else agrees vr vs)
             ra sa
    | Obs.Json.List rl, Obs.Json.List sl ->
        List.length rl = List.length sl && List.for_all2 agrees rl sl
    | r, s -> r = s
  in
  let raw = Obs.Snapshot.to_json snap_a in
  checkb "scrub touches only _secs/_per_sec keys" true
    (agrees raw (Obs.Snapshot.scrub_elapsed raw))

(* ------------------------------------------------------------------ *)
(* Json parser (the service protocol's only reader)                   *)
(* ------------------------------------------------------------------ *)

let test_json_parse_basics () =
  let module J = Obs.Json in
  let ok text expected =
    match J.of_string text with
    | Ok v -> checkb (Printf.sprintf "parse %S" text) true (v = expected)
    | Error e -> Alcotest.failf "parse %S: %s" text e
  in
  ok "null" J.Null;
  ok "true" (J.Bool true);
  ok "  false " (J.Bool false);
  ok "42" (J.Int 42);
  ok "-7" (J.Int (-7));
  ok "1.5" (J.Float 1.5);
  ok "2e3" (J.Float 2000.);
  ok {|"hi"|} (J.String "hi");
  ok {|"a\nb\t\"c\"\\"|} (J.String "a\nb\t\"c\"\\");
  ok {|"Aé"|} (J.String "A\xc3\xa9");
  (* Surrogate pair: U+1F600. *)
  ok {|"😀"|} (J.String "\xf0\x9f\x98\x80");
  ok "[1, 2, 3]" (J.List [ J.Int 1; J.Int 2; J.Int 3 ]);
  ok "{}" (J.Obj []);
  (* Field order is preserved, not sorted. *)
  ok {|{"b": 1, "a": 2}|} (J.Obj [ ("b", J.Int 1); ("a", J.Int 2) ])

let test_json_parse_errors () =
  let module J = Obs.Json in
  let bad text =
    checkb (Printf.sprintf "reject %S" text) true
      (Result.is_error (J.of_string text))
  in
  bad "";
  bad "{";
  bad "[1, 2";
  bad "{\"a\": }";
  bad "tru";
  bad "\"unterminated";
  bad "1 2";
  (* trailing garbage *)
  bad "{\"a\": 1,}";
  (* trailing comma *)
  bad "nan";
  (* Errors carry a byte offset. *)
  match J.of_string "[1, x]" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error msg ->
      let contains_offset =
        let n = String.length msg and p = "offset" in
        let pl = String.length p in
        let rec scan i =
          i + pl <= n && (String.sub msg i pl = p || scan (i + 1))
        in
        scan 0
      in
      checkb "offset in message" true contains_offset

let test_json_roundtrip () =
  let module J = Obs.Json in
  let docs =
    [
      J.Null;
      J.Obj
        [
          ("counters", J.Obj [ ("a.b", J.Int 3); ("c", J.Int 0) ]);
          ("list", J.List [ J.Bool true; J.Null; J.Float 0.25 ]);
          ("s", J.String "sp\xc3\xa9cial \"quoted\" \n text");
          ("neg", J.Int (-12345));
        ];
    ]
  in
  List.iter
    (fun doc ->
      match J.of_string (J.to_string doc) with
      | Ok doc' -> checkb "of_string (to_string d) = d" true (doc = doc')
      | Error e -> Alcotest.fail e)
    docs

let qcheck_json_roundtrip =
  let module J = Obs.Json in
  let leaf =
    QCheck.Gen.oneof
      [
        QCheck.Gen.return J.Null;
        QCheck.Gen.map (fun b -> J.Bool b) QCheck.Gen.bool;
        QCheck.Gen.map (fun i -> J.Int i) QCheck.Gen.small_signed_int;
        QCheck.Gen.map
          (fun f -> J.Float (Float.of_int (int_of_float (f *. 16.)) /. 16.))
          (QCheck.Gen.float_bound_inclusive 64.);
        QCheck.Gen.map (fun s -> J.String s) QCheck.Gen.string_printable;
      ]
  in
  let value =
    QCheck.Gen.sized (fun n ->
        QCheck.Gen.fix
          (fun self n ->
            if n <= 0 then leaf
            else
              QCheck.Gen.oneof
                [
                  leaf;
                  QCheck.Gen.map
                    (fun l -> J.List l)
                    (QCheck.Gen.list_size (QCheck.Gen.int_bound 4)
                       (self (n / 2)));
                  QCheck.Gen.map
                    (fun kvs ->
                      (* Duplicate keys break roundtripping by design;
                         index the keys to keep them distinct. *)
                      J.Obj
                        (List.mapi
                           (fun i (k, v) ->
                             (Printf.sprintf "%s_%d" k i, v))
                           kvs))
                    (QCheck.Gen.list_size (QCheck.Gen.int_bound 4)
                       (QCheck.Gen.pair QCheck.Gen.string_printable
                          (self (n / 2))));
                ])
          (min n 6))
  in
  QCheck.Test.make ~name:"json parse/print roundtrip" ~count:200
    (QCheck.make value) (fun doc ->
      match J.of_string (J.to_string doc) with
      | Ok doc' -> doc = doc'
      | Error e -> QCheck.Test.fail_reportf "no roundtrip: %s" e)

(* ------------------------------------------------------------------ *)
(* Structured logging                                                 *)
(* ------------------------------------------------------------------ *)

let test_log_levels_and_shape () =
  let module J = Obs.Json in
  let buf = Buffer.create 256 in
  let log = Obs.Log.to_buffer ~level:Obs.Log.Info buf in
  Obs.Log.debug log "below.threshold" [];
  Obs.Log.info log "job.enqueue" [ ("job", J.Int 1) ];
  Obs.Log.warn log "job.rejected" [ ("queue_depth", J.Int 3) ];
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  checki "debug filtered below info" 2 (List.length lines);
  List.iter
    (fun line ->
      match J.of_string line with
      | Error e -> Alcotest.fail ("unparseable log line: " ^ e)
      | Ok j ->
          checkb "has ts_secs" true (J.member "ts_secs" j <> None);
          checkb "has level" true (J.member "level" j <> None);
          checkb "has event" true (J.member "event" j <> None))
    lines;
  (match J.of_string (List.nth lines 0) with
  | Ok j ->
      checkb "event field" true
        (J.member "event" j = Some (J.String "job.enqueue"));
      checkb "level field" true
        (J.member "level" j = Some (J.String "info"));
      checkb "payload field" true (J.member "job" j = Some (J.Int 1))
  | Error e -> Alcotest.fail e);
  (* Levels roundtrip through their wire names; "warning" is accepted. *)
  List.iter
    (fun l ->
      checkb "level name roundtrip" true
        (Obs.Log.level_of_string (Obs.Log.level_to_string l) = Some l))
    [ Obs.Log.Debug; Obs.Log.Info; Obs.Log.Warn; Obs.Log.Error ];
  checkb "warning alias" true
    (Obs.Log.level_of_string "WARNING" = Some Obs.Log.Warn);
  checkb "unknown level" true (Obs.Log.level_of_string "loud" = None)

let test_log_scrub_masks_volatile_fields () =
  let module J = Obs.Json in
  let buf = Buffer.create 256 in
  let log = Obs.Log.to_buffer ~scrub:true buf in
  Obs.Log.info log "job.done"
    [
      ("job", J.Int 7);
      ("run_ms", J.Int 1234);
      ("nested", J.Obj [ ("wait_secs", J.Float 0.5); ("state", J.String "done") ]);
    ];
  (match J.of_string (String.trim (Buffer.contents buf)) with
  | Error e -> Alcotest.fail e
  | Ok j ->
      checkb "ts_secs nulled" true (J.member "ts_secs" j = Some J.Null);
      checkb "run_ms nulled" true (J.member "run_ms" j = Some J.Null);
      checkb "stable field kept" true (J.member "job" j = Some (J.Int 7));
      (match J.member "nested" j with
      | Some nested ->
          checkb "nested _secs nulled" true
            (J.member "wait_secs" nested = Some J.Null);
          checkb "nested stable kept" true
            (J.member "state" nested = Some (J.String "done"))
      | None -> Alcotest.fail "nested object dropped"));
  (* The mask is exactly the suffix contract — nothing else. *)
  let masked =
    Obs.Log.scrub_fields
      [
        ("a_ms", J.Int 1);
        ("b_secs", J.Float 2.0);
        ("c_per_sec", J.Int 3);
        ("d_util", J.Float 0.9);
        ("milliseconds", J.Int 4);
        ("ms", J.Int 5);
      ]
  in
  checkb "suffix keys nulled" true
    (List.for_all
       (fun k -> List.assoc k masked = J.Null)
       [ "a_ms"; "b_secs"; "c_per_sec"; "d_util" ]);
  checkb "non-suffix keys kept" true
    (List.assoc "milliseconds" masked = J.Int 4
    && List.assoc "ms" masked = J.Int 5)

(* The determinism contract behind tools/check_metrics.sh: two scrubbed
   loggers fed the same records emit byte-identical streams, whatever
   wall-clock values the volatile fields carried. *)
let qcheck_scrubbed_log_deterministic =
  let module J = Obs.Json in
  let field =
    QCheck.Gen.oneof
      [
        QCheck.Gen.map
          (fun (k, v) -> ("f_" ^ k, J.Int v))
          (QCheck.Gen.pair QCheck.Gen.string_printable QCheck.Gen.small_signed_int);
        QCheck.Gen.map (fun v -> ("dur_ms", J.Int v)) QCheck.Gen.small_nat;
        QCheck.Gen.map
          (fun v -> ("t_secs", J.Float v))
          (QCheck.Gen.float_bound_inclusive 100.);
      ]
  in
  let record =
    QCheck.Gen.pair QCheck.Gen.string_printable
      (QCheck.Gen.list_size (QCheck.Gen.int_bound 5) field)
  in
  let records = QCheck.Gen.list_size (QCheck.Gen.int_bound 10) record in
  QCheck.Test.make ~name:"scrubbed log streams are byte-deterministic"
    ~count:100 (QCheck.make records) (fun records ->
      let emit jitter =
        let buf = Buffer.create 256 in
        let log = Obs.Log.to_buffer ~scrub:true buf in
        List.iter
          (fun (event, fields) ->
            (* A second "run" observes different wall-clock latencies;
               scrub must erase the difference. *)
            let fields =
              List.map
                (fun (k, v) ->
                  match v with
                  | J.Int n when k = "dur_ms" -> (k, J.Int (n + jitter))
                  | v -> (k, v))
                fields
            in
            Obs.Log.info log event fields)
          records;
        Buffer.contents buf
      in
      String.equal (emit 0) (emit 17))

(* ------------------------------------------------------------------ *)
(* OpenMetrics export                                                 *)
(* ------------------------------------------------------------------ *)

let contains ~needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let test_slo_cumulativity () =
  let module ME = Obs.Metrics_export in
  let slo = ME.Slo.create ~buckets_ms:[ 10; 100; 1000 ] () in
  List.iter (ME.Slo.observe slo) [ 0; 5; 10; 50; 500; 5000 ];
  checki "count" 6 (ME.Slo.count slo);
  checki "sum" 5565 (ME.Slo.sum_ms slo);
  (match ME.Slo.buckets slo with
  | [ (10, c10); (100, c100); (1000, c1000) ] ->
      checki "le=10" 3 c10;
      (* 0, 5, 10 *)
      checki "le=100" 4 c100;
      checki "le=1000" 5 c1000
  | bs -> Alcotest.failf "unexpected bucket shape (%d)" (List.length bs));
  (* Cumulative counts never decrease and never exceed the total. *)
  let counts = List.map snd (ME.Slo.buckets slo) in
  checkb "monotone" true
    (List.for_all2 ( <= )
       (List.filteri (fun i _ -> i < List.length counts - 1) counts)
       (List.tl counts));
  checkb "below +Inf" true
    (List.for_all (fun c -> c <= ME.Slo.count slo) counts);
  (* Bounds are sorted and deduplicated at creation. *)
  let slo2 = ME.Slo.create ~buckets_ms:[ 100; 10; 100 ] () in
  checkb "sorted unique bounds" true
    (List.map fst (ME.Slo.buckets slo2) = [ 10; 100 ])

let test_openmetrics_rendering () =
  let module ME = Obs.Metrics_export in
  let t = Obs.create () in
  Obs.incr t ~by:3 "service.requests";
  Obs.observe t "service.queue_wait_ms" 7;
  Obs.observe t "service.queue_wait_ms" 120;
  let slo = ME.Slo.create ~buckets_ms:[ 10; 1000 ] () in
  ME.Slo.observe slo 7;
  ME.Slo.observe slo 120;
  let gauges =
    [
      {
        ME.g_name = "queue_depth";
        g_help = "Jobs queued\nand \\waiting.";
        g_value = 4.0;
        g_labels = [];
      };
      {
        ME.g_name = "cache_hit_ratio";
        g_help = "ratio";
        g_value = 0.25;
        g_labels = [];
      };
      (* Two samples of one labeled family: one HELP/TYPE header, two
         sample lines, label values escaped. *)
      {
        ME.g_name = "fleet_worker_up";
        g_help = "Per-worker liveness.";
        g_value = 1.0;
        g_labels = [ ("worker", "0") ];
      };
      {
        ME.g_name = "fleet_worker_up";
        g_help = "Per-worker liveness.";
        g_value = 0.0;
        g_labels = [ ("worker", "a\"b") ];
      };
    ]
  in
  let doc =
    ME.render ~gauges
      ~slos:[ ("service_e2e_seconds", "End to end.", slo) ]
      (Obs.snapshot t)
  in
  checkb "ends with EOF" true
    (String.length doc >= 6 && String.sub doc (String.length doc - 6) 6 = "# EOF\n");
  (* OpenMetrics: the TYPE line names the family, samples add _total. *)
  checkb "counter family" true
    (contains ~needle:"# TYPE fpgapart_service_requests counter" doc);
  checkb "counter sample" true
    (contains ~needle:"fpgapart_service_requests_total 3" doc);
  checkb "gauge family" true
    (contains ~needle:"# TYPE fpgapart_queue_depth gauge" doc);
  checkb "integral gauge has no point" true
    (contains ~needle:"fpgapart_queue_depth 4\n" doc);
  checkb "fractional gauge" true
    (contains ~needle:"fpgapart_cache_hit_ratio 0.25" doc);
  (* Labeled gauges: one header per family, labels on the samples. *)
  checkb "labeled gauge family" true
    (contains ~needle:"# TYPE fpgapart_fleet_worker_up gauge" doc);
  checkb "labeled gauge header appears once" true
    (let needle = "# TYPE fpgapart_fleet_worker_up gauge" in
     let rec count from acc =
       match String.index_from_opt doc from '#' with
       | None -> acc
       | Some i ->
           let hit =
             i + String.length needle <= String.length doc
             && String.sub doc i (String.length needle) = needle
           in
           count (i + 1) (if hit then acc + 1 else acc)
     in
     count 0 0 = 1);
  checkb "labeled gauge sample" true
    (contains ~needle:"fpgapart_fleet_worker_up{worker=\"0\"} 1\n" doc);
  checkb "label value escaped" true
    (contains ~needle:"fpgapart_fleet_worker_up{worker=\"a\\\"b\"} 0\n" doc);
  (* HELP newlines and backslashes are escaped per the exposition
     format. *)
  checkb "help escaped" true
    (contains ~needle:"Jobs queued\\nand \\\\waiting." doc);
  (* SLO histogram: ms recorded, seconds exported, cumulative with +Inf
     and sum/count. *)
  checkb "slo bucket le=0.01" true
    (contains ~needle:"fpgapart_service_e2e_seconds_bucket{le=\"0.01\"} 1" doc);
  checkb "slo bucket le=1" true
    (contains ~needle:"fpgapart_service_e2e_seconds_bucket{le=\"1\"} 2" doc);
  checkb "slo +Inf" true
    (contains ~needle:"fpgapart_service_e2e_seconds_bucket{le=\"+Inf\"} 2" doc);
  checkb "slo count" true
    (contains ~needle:"fpgapart_service_e2e_seconds_count 2" doc);
  checkb "slo sum in seconds" true
    (contains ~needle:"fpgapart_service_e2e_seconds_sum 0.127" doc);
  (* The native signed-log2 histogram renders as a histogram family with
     cumulative buckets. *)
  checkb "native histogram family" true
    (contains ~needle:"# TYPE fpgapart_service_queue_wait_ms histogram" doc);
  checkb "native histogram count" true
    (contains ~needle:"fpgapart_service_queue_wait_ms_count 2" doc);
  (* Name sanitisation: Obs keys use dots, families must not. *)
  checkb "no dotted family names" false
    (contains ~needle:"fpgapart_service.requests" doc);
  checks "sanitize punctuation" "service_queue_wait_ms"
    (ME.sanitize "service.queue_wait_ms");
  checks "sanitize leading digit" "_9lives" (ME.sanitize "9lives")

(* Gauges are sampled by the caller per render: a new value shows up in
   the next exposition (no caching inside the renderer). *)
let test_gauge_freshness () =
  let module ME = Obs.Metrics_export in
  let snap = Obs.snapshot (Obs.create ()) in
  let render v =
    ME.render
      ~gauges:
        [ { ME.g_name = "queue_depth"; g_help = "d"; g_value = v; g_labels = [] } ]
      snap
  in
  checkb "first sample" true (contains ~needle:"fpgapart_queue_depth 2\n" (render 2.0));
  checkb "second sample" true
    (contains ~needle:"fpgapart_queue_depth 5\n" (render 5.0));
  checkb "stale sample gone" false
    (contains ~needle:"fpgapart_queue_depth 2\n" (render 5.0))

(* Cumulativity holds for any observation set, in both histogram
   flavours. *)
let qcheck_render_cumulative =
  let module ME = Obs.Metrics_export in
  QCheck.Test.make ~name:"slo buckets are cumulative for any input"
    ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_bound 50) (QCheck.int_bound 40_000))
    (fun samples ->
      let slo = ME.Slo.create () in
      List.iter (ME.Slo.observe slo) samples;
      let buckets = ME.Slo.buckets slo in
      let rec monotone = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone buckets
      && List.for_all (fun (_, c) -> c <= ME.Slo.count slo) buckets
      && ME.Slo.count slo = List.length samples
      && ME.Slo.sum_ms slo = List.fold_left ( + ) 0 samples)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "rendering" `Quick test_json_rendering;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "parse roundtrip" `Quick test_json_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
        ] );
      ( "sink",
        [
          Alcotest.test_case "noop" `Quick test_noop_sink;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "event order" `Quick test_event_order;
          Alcotest.test_case "fork/merge determinism" `Quick
            test_fork_merge_reproduces_sequential_stream;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "json shape" `Quick test_histogram_json_shape;
          QCheck_alcotest.to_alcotest test_bucket_soundness;
          QCheck_alcotest.to_alcotest test_histogram_fork_merge;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans, lanes, json" `Quick test_trace_spans;
          Alcotest.test_case "off by default" `Quick
            test_trace_off_records_nothing;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "json shape" `Quick test_snapshot_json_shape;
          Alcotest.test_case "pp prints (none) for empty sections" `Quick
            test_pp_empty_sections;
          Alcotest.test_case "scrub is minimal" `Quick
            test_scrub_elapsed_is_minimal;
          Alcotest.test_case "k-way determinism regression" `Quick
            test_kway_snapshot_deterministic;
        ] );
      ( "log",
        [
          Alcotest.test_case "levels and line shape" `Quick
            test_log_levels_and_shape;
          Alcotest.test_case "scrub masks volatile fields" `Quick
            test_log_scrub_masks_volatile_fields;
          QCheck_alcotest.to_alcotest qcheck_scrubbed_log_deterministic;
        ] );
      ( "metrics export",
        [
          Alcotest.test_case "slo cumulativity" `Quick test_slo_cumulativity;
          Alcotest.test_case "openmetrics rendering" `Quick
            test_openmetrics_rendering;
          Alcotest.test_case "gauge freshness" `Quick test_gauge_freshness;
          QCheck_alcotest.to_alcotest qcheck_render_cumulative;
        ] );
    ]
