(* Tests for the paper's core algorithms: replication potential (eq. 4-6),
   the unified gain model (eq. 7-11), gain buckets, F-M with functional
   replication, and the k-way heterogeneous-device driver. *)

open Core

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let qc t = QCheck_alcotest.to_alcotest t

(* ------------------------------------------------------------------ *)
(* Replication potential                                              *)
(* ------------------------------------------------------------------ *)

let test_psi_fig1 () =
  (* Fig. 1: A_X = [1 1 0], A_Y = [0 1 1] -> psi = 2. *)
  let psi =
    Replication_potential.of_supports
      [| Bitvec.of_list [ 0; 1 ]; Bitvec.of_list [ 1; 2 ] |]
  in
  checki "Fig. 1 cell" 2 psi

let test_psi_fig2 () =
  (* Fig. 2: A_X1 = [1 1 1 1 0], A_X2 = [0 0 0 1 1] -> psi = 4. *)
  let psi =
    Replication_potential.of_supports
      [| Bitvec.of_list [ 0; 1; 2; 3 ]; Bitvec.of_list [ 3; 4 ] |]
  in
  checki "Fig. 2 cell" 4 psi

let test_psi_single_output () =
  (* Eq. (4): psi = 0 when m = 1, regardless of inputs. *)
  checki "single output" 0
    (Replication_potential.of_supports [| Bitvec.of_list [ 0; 1; 2; 3 ] |])

let test_psi_disjoint_and_identical () =
  checki "disjoint supports: all inputs private" 4
    (Replication_potential.of_supports
       [| Bitvec.of_list [ 0; 1 ]; Bitvec.of_list [ 2; 3 ] |]);
  checki "identical supports: psi 0" 0
    (Replication_potential.of_supports
       [| Bitvec.of_list [ 0; 1 ]; Bitvec.of_list [ 0; 1 ] |]);
  checki "three outputs" 3
    (Replication_potential.of_supports
       [|
         Bitvec.of_list [ 0; 1 ]; Bitvec.of_list [ 1; 2 ]; Bitvec.of_list [ 3 ];
       |])

let test_distribution () =
  let h = Test_util.fig4_hypergraph () in
  let d = Replication_potential.distribution h in
  checki "total" 8 d.Replication_potential.total;
  (* M is the only multi-output cell; its psi is 5 (all inputs private). *)
  checki "single-output cells" 7 d.Replication_potential.single_output;
  Alcotest.check
    Alcotest.(list (pair int int))
    "multi by psi" [ (5, 1) ] d.Replication_potential.multi_by_psi;
  checki "r_0 counts all multi-output cells" 1
    (Replication_potential.max_replication_factor d ~threshold:0);
  checki "r_5" 1 (Replication_potential.max_replication_factor d ~threshold:5);
  checki "r_6" 0 (Replication_potential.max_replication_factor d ~threshold:6)

let test_replicable_threshold () =
  let h = Test_util.fig4_hypergraph () in
  let m = Hypergraph.cell h 0 in
  let rx = Hypergraph.cell h 6 in
  checkb "M at T=0" true (Replication_potential.replicable ~threshold:0 m);
  checkb "M at T=5" true (Replication_potential.replicable ~threshold:5 m);
  checkb "M at T=6" false (Replication_potential.replicable ~threshold:6 m);
  checkb "single-output never" false
    (Replication_potential.replicable ~threshold:0 rx)

(* ------------------------------------------------------------------ *)
(* Gain model                                                         *)
(* ------------------------------------------------------------------ *)

let test_gain_fig4_golden () =
  (* The paper's worked example: G_m = -1, G_tr = -2, G_r = +2. *)
  let _, st = Test_util.fig4_state () in
  let v = Gain.vectors st 0 in
  checki "G_m (eq. 7)" (-1) (Gain.single_move v);
  checki "G_tr (eq. 8)" (-2) (Gain.traditional_replication v);
  (match Gain.functional_replication st 0 ~threshold:0 with
  | Some (g, o) ->
      checki "G_r (eq. 11)" 2 g;
      checki "best output is X2" 1 o
  | None -> Alcotest.fail "functional replication should be available");
  (* Vector values, for the record: 2 cut inputs, both critical. *)
  checki "|C_I|" 2 (Bitvec.norm v.Gain.c_i);
  checki "|C_O|" 1 (Bitvec.norm v.Gain.c_o);
  checki "n" 5 v.Gain.n_inputs

let test_gain_threshold_blocks () =
  let _, st = Test_util.fig4_state () in
  checkb "T=6 blocks M" true
    (Gain.functional_replication st 0 ~threshold:6 = None);
  checkb "single-output cell can never replicate" true
    (Gain.functional_replication st 6 ~threshold:0 = None)

let qcheck_formula_matches_eval =
  (* Eq. (7) must equal the exact cut delta of a whole-cell move for every
     single cell, on arbitrary random states. *)
  QCheck.Test.make ~name:"eq. 7 = exact move delta" ~count:80
    QCheck.(pair small_int (int_range 4 20))
    (fun (seed, n_cells) ->
      let h = Test_util.random_hypergraph seed n_cells in
      let rng = Netlist.Rng.create (seed + 77) in
      let st = Partition_state.create h ~init_on_b:(fun _ -> Netlist.Rng.bool rng) in
      let ok = ref true in
      for c = 0 to Hypergraph.num_cells h - 1 do
        match Partition_state.single_side st c with
        | None -> ()
        | Some _ ->
            let v = Gain.vectors st c in
            let full = Partition_state.full_mask st c in
            let flip = Bitvec.complement (Bitvec.norm full) (Partition_state.mask st c) in
            let d = Partition_state.eval st c flip in
            if Gain.single_move v <> -d.Partition_state.d_cut then ok := false
      done;
      !ok)

let qcheck_functional_gain_positive_cases =
  (* G_r as reported must equal the exact delta of applying the chosen
     output migration. *)
  QCheck.Test.make ~name:"eq. 11 gain = exact migration delta" ~count:60
    QCheck.(pair small_int (int_range 4 16))
    (fun (seed, n_cells) ->
      let h = Test_util.random_hypergraph seed n_cells in
      let rng = Netlist.Rng.create (seed + 99) in
      let st = Partition_state.create h ~init_on_b:(fun _ -> Netlist.Rng.bool rng) in
      let ok = ref true in
      for c = 0 to Hypergraph.num_cells h - 1 do
        match Gain.functional_replication st c ~threshold:0 with
        | None -> ()
        | Some (g, o) ->
            let current = Partition_state.mask st c in
            let mask =
              if Bitvec.mem o current then Bitvec.remove o current
              else Bitvec.add o current
            in
            let d = Partition_state.eval st c mask in
            if g <> -d.Partition_state.d_cut then ok := false
      done;
      !ok)

let test_best_mask_change_candidates () =
  let _, st = Test_util.fig4_state () in
  (* Without replication: only the whole-cell move. *)
  let plain = Gain.best_mask_change st ~replication:`None 0 in
  checki "move only" 1 (List.length plain);
  (* With replication at T=0: move + one migration per output. *)
  let repl = Gain.best_mask_change st ~replication:(`Functional 0) 0 in
  checki "move + 2 migrations" 3 (List.length repl);
  (* Once replicated, unreplication and split adjustment appear. *)
  ignore (Partition_state.apply st 0 (Bitvec.singleton 1));
  let after = Gain.best_mask_change st ~replication:(`Functional 0) 0 in
  checkb "includes full-A merge" true
    (List.exists (fun (m, _) -> Bitvec.is_empty m) after);
  checkb "includes full-B merge" true
    (List.exists (fun (m, _) -> Bitvec.equal m (Partition_state.full_mask st 0)) after)

let test_no_duplicate_candidates () =
  (* Satellite of the incremental engine: iter_masks generates every
     candidate exactly once at the source (no post-hoc dedup), never the
     current mask, covering output counts m = 1, 2, 3 in both single-side
     and replicated states under both replication modes. *)
  let h = Test_util.random_hypergraph 3 20 in
  let n = Hypergraph.num_cells h in
  let outs c = Array.length (Hypergraph.cell h c).Hypergraph.outputs in
  List.iter
    (fun m ->
      checkb
        (Printf.sprintf "fixture covers m=%d" m)
        true
        (Array.exists (fun c -> outs c = m) (Array.init n Fun.id)))
    [ 1; 2; 3 ];
  let rng = Netlist.Rng.create 17 in
  for trial = 0 to 5 do
    let st =
      Partition_state.create h ~init_on_b:(fun _ -> Netlist.Rng.bool rng)
    in
    if trial > 0 then
      for c = 0 to n - 1 do
        if Netlist.Rng.int rng 3 = 0 then
          ignore
            (Partition_state.apply st c
               (Test_util.random_mask rng (Partition_state.full_mask st c)))
      done;
    List.iter
      (fun replication ->
        for c = 0 to n - 1 do
          let masks =
            List.map fst (Gain.best_mask_change st ~replication c)
          in
          let uniq = List.sort_uniq compare masks in
          checki "no duplicate candidates" (List.length masks)
            (List.length uniq);
          checkb "current mask never generated" false
            (List.exists (Bitvec.equal (Partition_state.mask st c)) masks)
        done)
      [ `None; `Functional 0 ]
  done

(* ------------------------------------------------------------------ *)
(* Bucket                                                             *)
(* ------------------------------------------------------------------ *)

let test_bucket_basics () =
  let b = Bucket.create ~num_items:10 ~max_gain:5 in
  checki "empty" 0 (Bucket.cardinal b);
  Bucket.insert b 3 2;
  Bucket.insert b 4 (-1);
  Bucket.insert b 5 2;
  checki "cardinal" 3 (Bucket.cardinal b);
  checkb "mem" true (Bucket.mem b 3);
  checki "gain" 2 (Bucket.gain b 3);
  (* LIFO at the top gain level: 5 inserted after 3. *)
  (match Bucket.find_best b (fun _ -> true) with
  | Some item -> checki "LIFO top" 5 item
  | None -> Alcotest.fail "expected an item");
  (* Predicate skips. *)
  (match Bucket.find_best b (fun i -> i <> 5 && i <> 3) with
  | Some item -> checki "skips to lower gain" 4 item
  | None -> Alcotest.fail "expected an item");
  Bucket.remove b 5;
  (match Bucket.find_best b (fun _ -> true) with
  | Some item -> checki "after removal" 3 item
  | None -> Alcotest.fail "expected an item");
  Bucket.update b 4 5;
  (match Bucket.find_best b (fun _ -> true) with
  | Some item -> checki "after update" 4 item
  | None -> Alcotest.fail "expected an item")

let test_bucket_clamping () =
  let b = Bucket.create ~num_items:4 ~max_gain:3 in
  Bucket.insert b 0 100;
  Bucket.insert b 1 (-100);
  checki "stored gain unclamped" 100 (Bucket.gain b 0);
  (match Bucket.find_best b (fun _ -> true) with
  | Some item -> checki "clamped ordering works" 0 item
  | None -> Alcotest.fail "expected an item");
  Bucket.remove b 0;
  (match Bucket.find_best b (fun _ -> true) with
  | Some item -> checki "negative clamp" 1 item
  | None -> Alcotest.fail "expected an item")

let test_bucket_errors () =
  let b = Bucket.create ~num_items:4 ~max_gain:3 in
  Bucket.insert b 0 1;
  Alcotest.check_raises "double insert"
    (Invalid_argument "Bucket.insert: item already present") (fun () ->
      Bucket.insert b 0 2);
  checkb "gain of absent raises" true
    (match Bucket.gain b 3 with exception Not_found -> true | _ -> false);
  Bucket.remove b 3 (* no-op *);
  Bucket.clear b;
  checki "cleared" 0 (Bucket.cardinal b)

let test_bucket_update_fast_path_order () =
  (* An update that leaves the clamped gain unchanged must not unlink /
     relink, so it preserves the item's position within its slot and does
     not refresh its LIFO recency. *)
  let best b = Bucket.find_best b (fun _ -> true) in
  let b = Bucket.create ~num_items:8 ~max_gain:3 in
  Bucket.insert b 1 2;
  Bucket.insert b 2 2;
  (match best b with
  | Some i -> checki "LIFO before update" 2 i
  | None -> Alcotest.fail "expected an item");
  Bucket.update b 1 2;
  (match best b with
  | Some i -> checki "same-gain update of 1 keeps 2 first" 2 i
  | None -> Alcotest.fail "expected an item");
  Bucket.update b 2 2;
  (match best b with
  | Some i -> checki "same-gain update of 2 keeps its place" 2 i
  | None -> Alcotest.fail "expected an item");
  (* Same clamped slot, different stored gain: 100 and 50 both clamp to
     +3. The slot order stays; the unclamped gain is refreshed. *)
  Bucket.insert b 3 100;
  Bucket.insert b 4 100;
  (match best b with
  | Some i -> checki "4 most recent in top slot" 4 i
  | None -> Alcotest.fail "expected an item");
  Bucket.update b 4 50;
  (match best b with
  | Some i -> checki "same-slot update keeps 4 first" 4 i
  | None -> Alcotest.fail "expected an item");
  checki "stored gain refreshed" 50 (Bucket.gain b 4);
  Bucket.update b 3 60;
  (match best b with
  | Some i -> checki "same-slot update of non-head keeps order" 4 i
  | None -> Alcotest.fail "expected an item");
  (* A slot-changing round trip is a relink: recency refreshed. *)
  Bucket.update b 3 1;
  Bucket.update b 3 100;
  (match best b with
  | Some i -> checki "slot-changing round trip refreshes recency" 3 i
  | None -> Alcotest.fail "expected an item")

let test_bucket_top_decay_and_interleaving () =
  let best b pred = Bucket.find_best b pred in
  let b = Bucket.create ~num_items:8 ~max_gain:4 in
  (* Clamping at both extremes. *)
  Bucket.insert b 0 1000;
  Bucket.insert b 1 (-1000);
  checki "positive clamp stores raw gain" 1000 (Bucket.gain b 0);
  checki "negative clamp stores raw gain" (-1000) (Bucket.gain b 1);
  (* Removing the only top-slot item: the lazy top pointer must decay
     past the emptied slots to the survivors. *)
  Bucket.remove b 0;
  (match best b (fun _ -> true) with
  | Some i -> checki "top decays to bottom slot" 1 i
  | None -> Alcotest.fail "expected an item");
  (* Interleaved inserts/removes/updates across slots. *)
  Bucket.insert b 2 0;
  Bucket.insert b 3 4;
  Bucket.update b 3 (-4);
  (match best b (fun _ -> true) with
  | Some i -> checki "after top item drops to bottom" 2 i
  | None -> Alcotest.fail "expected an item");
  Bucket.update b 1 10;
  (match best b (fun _ -> true) with
  | Some i -> checki "bottom item raised to clamped top" 1 i
  | None -> Alcotest.fail "expected an item");
  Bucket.remove b 1;
  Bucket.remove b 2;
  (match best b (fun _ -> true) with
  | Some i -> checki "decay again after removals" 3 i
  | None -> Alcotest.fail "expected an item");
  Bucket.remove b 3;
  checkb "empty scan finds nothing" true (best b (fun _ -> true) = None);
  checki "empty cardinal" 0 (Bucket.cardinal b)

let qcheck_bucket_matches_model =
  (* The bucket against a naive map model that encodes the documented
     contract: items keyed by clamped gain; ties broken by
     most-recently-moved-into-the-slot; an update that keeps the clamped
     gain does not refresh recency; update inserts when absent. *)
  QCheck.Test.make ~name:"bucket matches naive map model" ~count:150
    QCheck.(pair small_int (int_range 1 6))
    (fun (seed, max_gain) ->
      let rng = Netlist.Rng.create (seed + 1) in
      let num_items = 12 in
      let b = Bucket.create ~num_items ~max_gain in
      let model = Array.make num_items None in
      let tick = ref 0 in
      let clamp g = max (-max_gain) (min max_gain g) in
      let ok = ref true in
      for _ = 1 to 400 do
        let item = Netlist.Rng.int rng num_items in
        let g = Netlist.Rng.int rng ((4 * max_gain) + 3) - (2 * max_gain) - 1 in
        match Netlist.Rng.int rng 5 with
        | 0 ->
            if model.(item) = None then begin
              Bucket.insert b item g;
              incr tick;
              model.(item) <- Some (g, !tick)
            end
        | 1 ->
            Bucket.remove b item;
            model.(item) <- None
        | 2 -> (
            Bucket.update b item g;
            match model.(item) with
            | Some (old, r) when clamp old = clamp g ->
                model.(item) <- Some (g, r)
            | _ ->
                incr tick;
                model.(item) <- Some (g, !tick))
        | 3 ->
            let allow = Array.init num_items (fun _ -> Netlist.Rng.bool rng) in
            let expected =
              let best = ref None in
              Array.iteri
                (fun i entry ->
                  match entry with
                  | Some (g, r) when allow.(i) ->
                      let key = (clamp g, r) in
                      (match !best with
                      | Some (_, bkey) when bkey >= key -> ()
                      | _ -> best := Some (i, key))
                  | _ -> ())
                model;
              Option.map fst !best
            in
            if Bucket.find_best b (fun i -> allow.(i)) <> expected then
              ok := false
        | _ ->
            if Bucket.mem b item <> (model.(item) <> None) then ok := false;
            (match model.(item) with
            | Some (g, _) -> if Bucket.gain b item <> g then ok := false
            | None -> ());
            let card =
              Array.fold_left
                (fun acc e -> if e = None then acc else acc + 1)
                0 model
            in
            if Bucket.cardinal b <> card then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* F-M                                                                *)
(* ------------------------------------------------------------------ *)

let mapped_hypergraph circuit = Techmap.Mapper.to_hypergraph (Techmap.Mapper.map circuit)

let test_fm_improves_and_respects_balance () =
  let h = mapped_hypergraph (Netlist.Generator.alu ~bits:8 ()) in
  let total = Hypergraph.total_area h in
  let cfg = Fm.balance_config ~total_area:total () in
  let rng = Netlist.Rng.create 5 in
  let st = Fm.random_state rng h in
  let cut0 = Partition_state.cut st in
  let pen, cut, _ = Fm.run cfg st in
  checki "feasible" 0 pen;
  checkb "cut not worse" true (cut <= cut0);
  checkb "consistent" true (Result.is_ok (Partition_state.check_consistency st));
  let cap = int_of_float (ceil (1.10 *. float_of_int total /. 2.0)) in
  checkb "balance" true
    (Partition_state.area st Partition_state.A <= cap
    && Partition_state.area st Partition_state.B <= cap)

let test_fm_replication_beats_plain_on_fig4 () =
  (* On the Fig. 4 fixture a replication-enabled pass can reach cut 1;
     plain moves bottom out higher from the same start. *)
  let _, st_plain = Test_util.fig4_state () in
  let _, st_repl = Test_util.fig4_state () in
  let total = 8 in
  let plain_cfg = Fm.balance_config ~slack:0.6 ~total_area:total () in
  let repl_cfg =
    Fm.balance_config ~slack:0.6 ~replication:(`Functional 0) ~total_area:total ()
  in
  let _, cut_plain, _ = Fm.run plain_cfg st_plain in
  let _, cut_repl, _ = Fm.run repl_cfg st_repl in
  checkb "replication at least as good" true (cut_repl <= cut_plain);
  checkb "replication reaches cut <= 1" true (cut_repl <= 1)

let test_fm_replication_respects_threshold () =
  (* With a threshold above every cell's psi, no replica may appear. *)
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:6 ()) in
  let cfg =
    Fm.balance_config ~replication:(`Functional 1000)
      ~total_area:(Hypergraph.total_area h) ()
  in
  let rng = Netlist.Rng.create 3 in
  let st = Fm.random_state rng h in
  ignore (Fm.run cfg st);
  checki "no replicas at absurd threshold" 0 (Partition_state.num_replicated st)

let test_fm_replication_reduces_cut_on_clustered () =
  (* The paper's Table III effect, in miniature: over a few seeds,
     replication never loses and usually wins on a clustered sequential
     circuit. *)
  let c =
    Netlist.Generator.clustered
      {
        Netlist.Generator.default_clustered with
        clusters = 6;
        gates_per_cluster = 40;
        seed = 3;
      }
  in
  let h = mapped_hypergraph c in
  let total = Hypergraph.total_area h in
  let best cfg =
    let best = ref max_int in
    for seed = 1 to 5 do
      let st = Fm.random_state (Netlist.Rng.create seed) h in
      let pen, cut, _ = Fm.run cfg st in
      if pen = 0 && cut < !best then best := cut
    done;
    !best
  in
  let plain = best (Fm.balance_config ~total_area:total ()) in
  let repl =
    best (Fm.balance_config ~replication:(`Functional 0) ~total_area:total ())
  in
  checkb "plain found a feasible cut" true (plain < max_int);
  checkb "replication cut <= plain cut" true (repl <= plain)

let qcheck_fm_leaves_consistent_state =
  QCheck.Test.make ~name:"F-M leaves a consistent state" ~count:20
    QCheck.(pair small_int (int_range 8 30))
    (fun (seed, n_cells) ->
      let h = Test_util.random_hypergraph seed n_cells in
      let cfg =
        Fm.balance_config ~replication:(`Functional 0) ~slack:0.3
          ~total_area:(Hypergraph.total_area h) ()
      in
      let st = Fm.random_state (Netlist.Rng.create (seed + 5)) h in
      let cut0 = Partition_state.cut st in
      let _, cut, _ = Fm.run cfg st in
      Result.is_ok (Partition_state.check_consistency st) && cut <= cut0)

let qcheck_incremental_gains_exact =
  (* The tentpole invariant of the incremental engine: after every applied
     move, rescoring only the cells on nets that
     Partition_state.apply reported state-changed (a side's connection
     category min(count, 2) crossed 0<->1 or 1<->2) leaves every cell's
     cached best op equal to a from-scratch recomputation. Maintained here
     externally with the engine's exact selection fold, then audited over
     the WHOLE cell set after every move — so a single missed invalidation
     anywhere fails the property. Runs under both replication modes. *)
  QCheck.Test.make ~name:"incremental rescoring = from-scratch best op"
    ~count:20
    QCheck.(triple small_int (int_range 8 24) bool)
    (fun (seed, n_cells, functional) ->
      let replication = if functional then `Functional 0 else `None in
      let h = Test_util.random_hypergraph seed n_cells in
      let rng = Netlist.Rng.create (seed + 31) in
      let st =
        Partition_state.create h ~init_on_b:(fun _ -> Netlist.Rng.bool rng)
      in
      let n = Hypergraph.num_cells h in
      (* Engine-identical selection: maximise gain, tie-break on the
         smaller area growth, first-generated candidate wins the rest. *)
      let best c =
        let acc = ref None in
        Gain.iter_masks st ~replication c ~f:(fun m ->
            let d = Partition_state.eval st c m in
            let g = -d.Partition_state.d_cut in
            let tie =
              -(d.Partition_state.d_area_a + d.Partition_state.d_area_b)
            in
            match !acc with
            | Some (_, bg, bt) when bg > g || (bg = g && bt >= tie) -> ()
            | _ -> acc := Some (m, g, tie));
        !acc
      in
      let cached = Array.init n best in
      let ok = ref true in
      for _ = 1 to 3 * n do
        let c = Netlist.Rng.int rng n in
        let full = Partition_state.full_mask st c in
        let m =
          if functional then Test_util.random_mask rng full
          else Bitvec.complement (Bitvec.norm full) (Partition_state.mask st c)
        in
        ignore (Partition_state.apply st c m);
        (* The engine's maintenance step: the moved cell plus every cell
           on a state-changed net. *)
        cached.(c) <- best c;
        Partition_state.iter_changed_nets st (fun net ->
            Array.iter
              (fun cell -> cached.(cell) <- best cell)
              h.Hypergraph.net_cells.(net));
        (* The audit: every cell, not just the rescored ones. *)
        for cell = 0 to n - 1 do
          if cached.(cell) <> best cell then ok := false
        done
      done;
      !ok)

let test_fm_lazy_gain_mode () =
  (* `Lazy defers rescoring to bucket-pop time: a deliberately inexact
     pick order, but deterministic, consistent, and still never worse
     than the initial state. *)
  let h = mapped_hypergraph (Netlist.Generator.alu ~bits:8 ()) in
  let total = Hypergraph.total_area h in
  let cfg =
    Fm.balance_config ~replication:(`Functional 0) ~gain_mode:`Lazy
      ~total_area:total ()
  in
  let st = Fm.random_state (Netlist.Rng.create 5) h in
  let cut0 = Partition_state.cut st in
  let _, cut, _ = Fm.run cfg st in
  checkb "lazy mode improves the cut" true (cut <= cut0);
  checkb "lazy mode leaves a consistent state" true
    (Result.is_ok (Partition_state.check_consistency st));
  let st2 = Fm.random_state (Netlist.Rng.create 5) h in
  let _, cut2, _ = Fm.run cfg st2 in
  checki "lazy mode deterministic (cut)" cut cut2;
  for c = 0 to Hypergraph.num_cells h - 1 do
    if not (Bitvec.equal (Partition_state.mask st c) (Partition_state.mask st2 c))
    then Alcotest.failf "lazy mode nondeterministic at cell %d" c
  done

let test_fm_oracle_mode_identical () =
  (* Oracle mode recomputes every affected cell's best op from scratch
     after every applied move and compares with the incremental cache
     (failwith on mismatch); its decisions are byte-identical to a plain
     run by construction — this pins both halves of that contract. *)
  let h = mapped_hypergraph (Netlist.Generator.alu ~bits:8 ()) in
  let total = Hypergraph.total_area h in
  let cfg =
    Fm.balance_config ~replication:(`Functional 0) ~total_area:total ()
  in
  let st = Fm.random_state (Netlist.Rng.create 7) h in
  let sto = Fm.random_state (Netlist.Rng.create 7) h in
  let score = Fm.run cfg st in
  let score_o = Fm.run { cfg with Fm.oracle = true } sto in
  checkb "oracle run returns the same score" true (score = score_o);
  for c = 0 to Hypergraph.num_cells h - 1 do
    if not (Bitvec.equal (Partition_state.mask st c) (Partition_state.mask sto c))
    then Alcotest.failf "oracle mode diverged at cell %d" c
  done

let qcheck_fm_oracle_never_trips =
  (* The oracle cross-check aborts the run on any stale cached gain; it
     completing at all on random instances, under both replication
     modes, is the property. *)
  QCheck.Test.make ~name:"F-M oracle cross-check passes" ~count:12
    QCheck.(triple small_int (int_range 8 26) bool)
    (fun (seed, n_cells, functional) ->
      let h = Test_util.random_hypergraph seed n_cells in
      let cfg =
        Fm.Config.make ~oracle:true
          ~replication:(if functional then `Functional 0 else `None)
          ~area_ok:(fun _ _ -> true)
          ~score:(fun st -> (0, Fm.objective_value Fm.Cut st, 0))
          ()
      in
      let st = Fm.random_state (Netlist.Rng.create (seed + 13)) h in
      let cut0 = Partition_state.cut st in
      let _, cut, _ = Fm.run cfg st in
      Result.is_ok (Partition_state.check_consistency st) && cut <= cut0)

let test_fm_staged_never_worse () =
  (* run_staged must match or beat plain F-M from the same start, on every
     seed, because replication extends a converged plain solution. *)
  let h = mapped_hypergraph (Netlist.Generator.alu ~bits:8 ()) in
  let total = Hypergraph.total_area h in
  let plain_cfg = Fm.balance_config ~total_area:total () in
  let repl_cfg =
    Fm.balance_config ~replication:(`Functional 0) ~total_area:total ()
  in
  for seed = 1 to 6 do
    let st1 = Fm.random_state (Netlist.Rng.create seed) h in
    let st2 = Fm.random_state (Netlist.Rng.create seed) h in
    let _, plain, _ = Fm.run plain_cfg st1 in
    let _, staged, _ = Fm.run_staged repl_cfg st2 in
    checkb "staged <= plain" true (staged <= plain)
  done

let test_fm_traditional_model_weaker () =
  (* With the traditional (all-inputs) replica connection rule the gains
     largely evaporate: the Fig. 1 motivation as a property. *)
  let c =
    Netlist.Generator.clustered
      { Netlist.Generator.default_clustered with clusters = 5; seed = 9 }
  in
  let h = mapped_hypergraph c in
  let total = Hypergraph.total_area h in
  let cfg = Fm.balance_config ~replication:(`Functional 0) ~total_area:total () in
  let best model =
    let best = ref max_int in
    for seed = 1 to 4 do
      let n = Hypergraph.num_cells h in
      let order = Array.init n Fun.id in
      Netlist.Rng.shuffle (Netlist.Rng.create seed) order;
      let on_b = Array.make n false in
      Array.iteri (fun k cell -> if k < n / 2 then on_b.(cell) <- true) order;
      let st = Partition_state.create ~model h ~init_on_b:(fun x -> on_b.(x)) in
      let _, cut, _ = Fm.run_staged cfg st in
      best := min !best cut
    done;
    !best
  in
  let functional = best Partition_state.Functional in
  let traditional = best Partition_state.Traditional in
  checkb "functional beats traditional" true (functional < traditional)

let test_two_device_config () =
  (* Refining a deliberately unbalanced Fig. 4-style instance: both sides
     must respect their windows and the terminals drop or hold. *)
  let h = mapped_hypergraph (Netlist.Generator.ripple_adder ~bits:16 ()) in
  let n = Hypergraph.num_cells h in
  let st = Partition_state.create h ~init_on_b:(fun c -> c >= n / 4) in
  let bounds cap = Fm.bounds ~min_clbs:1 ~max_clbs:cap ~max_terminals:1000 () in
  let total = Hypergraph.total_area h in
  let cfg =
    Fm.two_device_config ~bounds_a:(bounds total) ~bounds_b:(bounds total) ()
  in
  let t0 =
    Partition_state.terminals st Partition_state.A
    + Partition_state.terminals st Partition_state.B
  in
  let pen, terms, _ = Fm.run cfg st in
  checki "feasible" 0 pen;
  checkb "terminals not worse" true (terms <= t0);
  checkb "state consistent" true
    (Result.is_ok (Partition_state.check_consistency st))

(* ------------------------------------------------------------------ *)
(* Multilevel coarsening                                              *)
(* ------------------------------------------------------------------ *)

let test_coarsen_structure () =
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:10 ()) in
  let rng = Netlist.Rng.create 3 in
  let coarse, map = Coarsen.coarsen ~rng h in
  checkb "valid" true (Result.is_ok (Hypergraph.validate coarse));
  checkb "shrinks" true
    (Hypergraph.num_cells coarse < Hypergraph.num_cells h);
  (* Area is conserved: clusters weigh what their members weigh. *)
  checki "area conserved" (Hypergraph.total_area h)
    (Hypergraph.total_area coarse);
  (* The map is a total function onto the coarse cells. *)
  Array.iter
    (fun k -> checkb "map in range" true (k >= 0 && k < Hypergraph.num_cells coarse))
    map;
  checki "map covers fine cells" (Hypergraph.num_cells h) (Array.length map)

let test_coarsen_respects_pin_budget () =
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:10 ()) in
  let rng = Netlist.Rng.create 3 in
  let rec check_levels h depth =
    if depth < 4 && Hypergraph.num_cells h > 50 then begin
      let coarse, _ = Coarsen.coarsen ~rng h in
      Array.iter
        (fun cell ->
          checkb "inputs within mask budget" true
            (Array.length cell.Hypergraph.inputs <= Bitvec.max_width);
          checkb "outputs within mask budget" true
            (Array.length cell.Hypergraph.outputs <= Bitvec.max_width))
        coarse.Hypergraph.cells;
      check_levels coarse (depth + 1)
    end
  in
  check_levels h 0

let test_multilevel_init_quality () =
  (* The multilevel initial solution must not lose to random init + F-M on
     a clustered circuit (it usually wins clearly). *)
  let h = mapped_hypergraph
      (Netlist.Generator.clustered
         { Netlist.Generator.default_clustered with clusters = 10; seed = 17 })
  in
  let total = Hypergraph.total_area h in
  let cfg = Fm.balance_config ~total_area:total () in
  let best f =
    let b = ref max_int in
    for s = 1 to 4 do
      b := min !b (f (Netlist.Rng.create s))
    done;
    !b
  in
  let flat =
    best (fun rng ->
        let st = Fm.random_state rng h in
        let _, cut, _ = Fm.run cfg st in
        cut)
  in
  let ml =
    best (fun rng ->
        let st = Coarsen.multilevel_init ~rng cfg h in
        checkb "consistent" true (Result.is_ok (Partition_state.check_consistency st));
        let _, cut, _ = Fm.run cfg st in
        cut)
  in
  checkb "multilevel at least competitive" true
    (float_of_int ml <= 1.1 *. float_of_int flat)

let test_coarsen_weight_caps () =
  (* Per-axis cluster weight caps: a chain of BRAM-heavy cells (demand
     8 on axis 2, cap 10) must not merge with each other — any pair
     would weigh 16 on the BRAM axis — while a logic-only cell may
     still fold into its BRAM neighbour. *)
  let bram = [| 2; 0; 8; 0 |] in
  let spec ?(demand = bram) name inputs outputs =
    {
      Hypergraph.s_name = name;
      s_area = demand.(0);
      s_demand = demand;
      s_inputs = Array.of_list inputs;
      s_outputs = Array.of_list outputs;
      s_supports =
        Array.of_list
          (List.map
             (fun _ -> Bitvec.of_list (List.mapi (fun i _ -> i) inputs))
             outputs);
    }
  in
  let h =
    Hypergraph.create ~num_nets:6 ~external_nets:[ 4; 5 ]
      [
        spec "b0" [ 4 ] [ 0 ];
        spec "b1" [ 0 ] [ 1 ];
        spec "b2" [ 1 ] [ 2 ];
        spec "b3" [ 2 ] [ 3 ];
        spec ~demand:[| 1 |] "l" [ 3 ] [ 5 ];
      ]
  in
  let axis j (c : Hypergraph.cell) =
    if j < Array.length c.Hypergraph.demand then c.Hypergraph.demand.(j) else 0
  in
  let capped, _ =
    Coarsen.coarsen ~max_weight:[| 100; 100; 10; 100 |]
      ~rng:(Netlist.Rng.create 1) h
  in
  (* The only admissible merge is l into b3: four clusters remain and
     every cluster obeys the BRAM cap. *)
  checki "capped cells" 4 (Hypergraph.num_cells capped);
  Array.iter
    (fun c -> checkb "bram axis capped" true (axis 2 c <= 10))
    capped.Hypergraph.cells;
  checki "area conserved under caps" (Hypergraph.total_area h)
    (Hypergraph.total_area capped);
  (* Without the cap the same chain merges BRAM pairs and overshoots. *)
  let free, _ = Coarsen.coarsen ~rng:(Netlist.Rng.create 1) h in
  checkb "uncapped merges bram pairs" true
    (Array.exists (fun c -> axis 2 c > 10) free.Hypergraph.cells)

let qcheck_projection_sound =
  (* The uncoarsening contract of the V-cycle: pulling the coarse
     labelling down the hierarchy, every level materialises
     ([Kway.project_parts]) into a feasible, [Kway.check]-clean result
     whose interconnect never exceeds the coarse level's — coarsening
     only hides nets internal to one cluster, which projection keeps
     internal to one part. *)
  QCheck.Test.make ~name:"V-cycle projection stays feasible and check-clean"
    ~count:6
    QCheck.(int_range 1 1000)
    (fun seed ->
      let h =
        mapped_hypergraph
          (Netlist.Generator.clustered
             { Netlist.Generator.default_clustered with clusters = 6; seed })
      in
      let hier =
        Coarsen.hierarchy ~coarsest:60 ~rng:(Netlist.Rng.create (seed + 3)) h
      in
      let options = Kway.Options.make ~runs:2 ~seed:1 () in
      match
        Kway.partition ~options ~library:Fpga.Library.xc3000
          hier.Coarsen.coarsest
      with
      | Error _ -> QCheck.assume_fail () (* infeasible coarsest: vacuous *)
      | Ok coarse ->
          let devices =
            Array.of_list
              (List.map (fun p -> p.Kway.device) coarse.Kway.parts)
          in
          let labels, _ =
            Kway.labels_of_parts hier.Coarsen.coarsest coarse.Kway.parts
          in
          let ok = ref true in
          let cut = ref coarse.Kway.summary.Fpga.Cost.total_iobs in
          let _ =
            List.fold_left
              (fun labels (fine, map) ->
                let labels = Coarsen.project_labels ~map labels in
                (match
                   Kway.project_parts ~options ~library:Fpga.Library.xc3000
                     ~labels ~devices fine
                 with
                | Error _ -> ok := false
                | Ok parts ->
                    let r = Kway.result_of_parts fine parts in
                    (match Kway.check fine r with
                    | Ok () -> ()
                    | Error _ -> ok := false);
                    let iobs = r.Kway.summary.Fpga.Cost.total_iobs in
                    if iobs > !cut then ok := false;
                    cut := iobs);
                labels)
              labels hier.Coarsen.levels
          in
          !ok)

let test_multilevel_jobs_stable () =
  (* The multilevel driver's result must be independent of the worker
     count, like the flat driver's: same circuit, same seed, jobs=1 vs
     jobs=4 — identical devices, loads and cost. *)
  let h =
    mapped_hypergraph
      (Netlist.Generator.clustered
         { Netlist.Generator.default_clustered with clusters = 10; seed = 17 })
  in
  let run jobs =
    let options =
      Kway.Options.make ~runs:2 ~seed:1 ~jobs
        ~strategy:(Kway.Multilevel Kway.Options.default_multilevel) ()
    in
    match Kway.partition ~options ~library:Fpga.Library.xc3000 h with
    | Error e -> Alcotest.fail e
    | Ok r ->
        (match Kway.check h r with
        | Ok () -> ()
        | Error e -> Alcotest.fail ("unsound: " ^ e));
        ( r.Kway.summary.Fpga.Cost.total_cost,
          List.map
            (fun p -> (p.Kway.device.Fpga.Device.name, p.Kway.clbs, p.Kway.iobs))
            r.Kway.parts )
  in
  let cost1, parts1 = run 1 in
  let cost4, parts4 = run 4 in
  Alcotest.check (Alcotest.float 0.0) "cost jobs-independent" cost1 cost4;
  checkb "parts jobs-independent" true (parts1 = parts4)

(* ------------------------------------------------------------------ *)
(* k-way driver                                                       *)
(* ------------------------------------------------------------------ *)

(* FPGAPART_JOBS lets the CI matrix exercise the parallel multi-start
   path through the whole k-way suite without a dedicated test copy. *)
let small_options =
  Kway.Options.make ~runs:3 ~fm_attempts:2
    ~jobs:(Parallel.Pool.jobs_from_env ())
    ()

let test_kway_refinement_not_worse () =
  (* Refinement may only improve the (cost, interconnect) outcome. *)
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:16 ()) in
  let go refine_rounds =
    let options = { small_options with refine_rounds } in
    match Kway.partition ~options ~library:Fpga.Library.xc3000 h with
    | Error e -> Alcotest.fail e
    | Ok r ->
        (match Kway.check h r with
        | Ok () -> ()
        | Error e -> Alcotest.fail ("unsound: " ^ e));
        ( r.Kway.summary.Fpga.Cost.total_cost,
          r.Kway.summary.Fpga.Cost.total_iobs )
  in
  let cost0, iobs0 = go 0 in
  let cost1, iobs1 = go 1 in
  checkb "refinement does not raise cost" true (cost1 <= cost0);
  checkb "refinement does not raise total IOBs when cost ties" true
    (cost1 < cost0 || iobs1 <= iobs0)

(* lib/fpga cannot depend on hypergraph_lib (layering), so the demand
   arity lives in both; this pin is the only thing keeping them equal. *)
let test_demand_arity_pin () =
  checki "Fpga.Resource.demand_arity = Hypergraph.demand_arity"
    Hypergraph.demand_arity Fpga.Resource.demand_arity

let test_kway_objectives () =
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:16 ()) in
  List.iter
    (fun (objective : Fpga.Objective.t) ->
      let options =
        Kway.Options.make ~runs:3 ~fm_attempts:2 ~objective
          ~jobs:(Parallel.Pool.jobs_from_env ())
          ()
      in
      match Kway.partition ~options ~library:Fpga.Library.xc3000 h with
      | Error e -> Alcotest.fail (objective.Fpga.Objective.name ^ ": " ^ e)
      | Ok r -> (
          match Kway.check h r with
          | Ok () -> ()
          | Error e ->
              Alcotest.fail (objective.Fpga.Objective.name ^ " unsound: " ^ e)))
    Fpga.Objective.builtins

let test_kway_xc4000 () =
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:16 ()) in
  match Kway.partition ~options:small_options ~library:Fpga.Library.xc4000 h with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      match Kway.check h r with
      | Ok () ->
          checkb "uses XC4000 parts" true
            (List.for_all
               (fun (name, _) -> String.length name >= 5 && String.sub name 0 3 = "XC4")
               r.Kway.summary.Fpga.Cost.device_counts)
      | Error e -> Alcotest.fail ("unsound: " ^ e))

let test_kway_single_device () =
  (* c17 maps to a couple of CLBs: one XC3020 suffices. *)
  let h = mapped_hypergraph (Netlist.Generator.c17 ()) in
  match Kway.partition ~options:small_options ~library:Fpga.Library.xc3000 h with
  | Error e -> Alcotest.fail e
  | Ok r ->
      checki "one part" 1 r.Kway.summary.Fpga.Cost.num_partitions;
      checkb "sound" true (Result.is_ok (Kway.check h r));
      checkb "cheapest device" true
        (r.Kway.summary.Fpga.Cost.total_cost <= 100.0)

let test_kway_multi_device () =
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:16 ()) in
  checkb "needs more than one device" true
    (Hypergraph.total_area h > Fpga.Device.max_clbs (Fpga.Library.largest Fpga.Library.xc3000));
  match Kway.partition ~options:small_options ~library:Fpga.Library.xc3000 h with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      checkb "k >= 2" true (r.Kway.summary.Fpga.Cost.num_partitions >= 2);
      match Kway.check h r with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("unsound partition: " ^ e))

let test_kway_with_replication () =
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:16 ()) in
  let options = { small_options with replication = `Functional 0 } in
  match Kway.partition ~options ~library:Fpga.Library.xc3000 h with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      match Kway.check h r with
      | Ok () ->
          checkb "replication within bounds" true
            (r.Kway.replicated_cells >= 0
            && r.Kway.replicated_cells <= r.Kway.total_cells)
      | Error e -> Alcotest.fail ("unsound partition: " ^ e))

let test_kway_deterministic () =
  let h = mapped_hypergraph (Netlist.Generator.ecc ~data_bits:24 ()) in
  let go () =
    match Kway.partition ~options:small_options ~library:Fpga.Library.xc3000 h with
    | Error e -> Alcotest.fail e
    | Ok r ->
        ( r.Kway.summary.Fpga.Cost.total_cost,
          r.Kway.summary.Fpga.Cost.total_iobs,
          r.Kway.summary.Fpga.Cost.num_partitions )
  in
  let a = go () and b = go () in
  checkb "same options, same result" true (a = b)

let test_kway_check_catches_corruption () =
  let h = mapped_hypergraph (Netlist.Generator.c17 ()) in
  match Kway.partition ~options:small_options ~library:Fpga.Library.xc3000 h with
  | Error e -> Alcotest.fail e
  | Ok r ->
      (* Drop a member: coverage must fail. *)
      let broken =
        match r.Kway.parts with
        | p :: rest ->
            { r with Kway.parts = { p with Kway.members = List.tl p.Kway.members } :: rest }
        | [] -> r
      in
      checkb "detects missing output" true (Result.is_error (Kway.check h broken))

let test_kway_check_catches_bad_iobs_and_summary () =
  (* The recorded per-part IOBs and the summary figures are validated
     against recounts: corrupting any of them must be rejected while the
     pristine result still passes. *)
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:16 ()) in
  match Kway.partition ~options:small_options ~library:Fpga.Library.xc3000 h with
  | Error e -> Alcotest.fail e
  | Ok r ->
      checkb "pristine result accepted" true (Result.is_ok (Kway.check h r));
      let corrupt_first_part f =
        match r.Kway.parts with
        | p :: rest -> { r with Kway.parts = f p :: rest }
        | [] -> r
      in
      let bad_iobs = corrupt_first_part (fun p -> { p with Kway.iobs = p.Kway.iobs + 1 }) in
      checkb "detects inflated part iobs" true
        (Result.is_error (Kway.check h bad_iobs));
      let starved_iobs =
        corrupt_first_part (fun p -> { p with Kway.iobs = p.Kway.iobs - 1 })
      in
      checkb "detects deflated part iobs" true
        (Result.is_error (Kway.check h starved_iobs));
      let bad_cost =
        {
          r with
          Kway.summary =
            { r.Kway.summary with Fpga.Cost.total_cost = r.Kway.summary.Fpga.Cost.total_cost +. 1.0 };
        }
      in
      checkb "detects wrong summary cost" true
        (Result.is_error (Kway.check h bad_cost));
      let bad_repl = { r with Kway.replicated_cells = r.Kway.replicated_cells + 1 } in
      checkb "detects wrong replication figure" true
        (Result.is_error (Kway.check h bad_repl))

(* ------------------------------------------------------------------ *)
(* Telemetry and generated-circuit properties                         *)
(* ------------------------------------------------------------------ *)

let fm_pass_events obs =
  List.filter
    (fun e -> e.Obs.Snapshot.name = "fm.pass")
    (Obs.snapshot obs).Obs.Snapshot.events

let event_int e key =
  match List.assoc_opt key e.Obs.Snapshot.fields with
  | Some (Obs.Json.Int i) -> i
  | _ -> Alcotest.failf "fm.pass event lacks int field %s" key

let qcheck_fm_telemetry_invariants =
  (* Per-pass telemetry must satisfy the structural invariants of the
     algorithm: at most one applied op per cell, rollback within the pass's
     own ops, replication acceptance within attempts, and the last event's
     cut equal to the state's recomputed cut. *)
  QCheck.Test.make ~name:"fm.pass telemetry invariants" ~count:30
    QCheck.(pair small_int (int_range 8 30))
    (fun (seed, n_cells) ->
      let h = Test_util.random_hypergraph seed n_cells in
      let cfg =
        Fm.balance_config ~replication:(`Functional 0) ~slack:0.3
          ~total_area:(Hypergraph.total_area h) ()
      in
      let st = Fm.random_state (Netlist.Rng.create (seed + 13)) h in
      let obs = Obs.create () in
      ignore (Fm.run ~obs cfg st);
      let passes = fm_pass_events obs in
      let n = Hypergraph.num_cells h in
      let each_ok =
        List.for_all
          (fun e ->
            let applied = event_int e "applied" in
            let rolled_back = event_int e "rolled_back" in
            let attempted = event_int e "repl_attempted" in
            let accepted = event_int e "repl_accepted" in
            applied >= 0 && applied <= n
            && rolled_back >= 0
            && rolled_back <= applied
            && accepted >= 0 && accepted <= attempted
            && attempted <= applied)
          passes
      in
      let last_ok =
        match List.rev passes with
        | [] -> false (* max_passes > 0 always emits at least one event *)
        | last :: _ ->
            let cut, term_a, term_b, _, _ = Partition_state.recompute st in
            event_int last "cut" = cut
            && event_int last "terminals" = term_a + term_b
      in
      each_ok && last_ok)

let qcheck_kway_sound_on_generated_circuits =
  (* End-to-end hardening: for random generated circuits the driver's Ok
     results always pass the strengthened check, and the telemetry stays
     within the same structural bounds (sub-problems never exceed the
     original cell count). *)
  QCheck.Test.make ~name:"k-way Ok results pass check on generated circuits"
    ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Netlist.Rng.create seed in
      let c =
        Netlist.Generator.random ~rng ~num_inputs:(8 + (seed mod 7))
          ~num_gates:(140 + (seed mod 120))
          ~num_dff:(seed mod 9)
          ~num_outputs:(6 + (seed mod 5))
          ()
      in
      let h = mapped_hypergraph c in
      let options =
        Kway.Options.make ~runs:2 ~fm_attempts:2 ~seed:(seed + 1)
          ~replication:(`Functional 0)
          ~jobs:(Parallel.Pool.jobs_from_env ())
          ()
      in
      let obs = Obs.create () in
      match Kway.partition ~obs ~options ~library:Fpga.Library.xc3000 h with
      | Error _ -> true (* infeasible random instances are acceptable *)
      | Ok r ->
          let sound =
            match Kway.check h r with
            | Ok () -> true
            | Error e -> QCheck.Test.fail_reportf "unsound: %s" e
          in
          let n = Hypergraph.num_cells h in
          let telemetry_ok =
            List.for_all
              (fun e ->
                let applied = event_int e "applied" in
                applied <= n && event_int e "rolled_back" <= applied)
              (fm_pass_events obs)
          in
          sound && telemetry_ok)

let qcheck_warm_start_sound_and_close =
  (* The incremental contract: projecting a base partition onto a small
     random edit and warm-starting yields a feasible, check-clean result
     whose cost stays within a constant factor of a cold run on the
     edited circuit. Also pins the projection bookkeeping the service
     relies on (dirty covers every unlabelled cell). *)
  QCheck.Test.make ~name:"warm start is sound and near cold cost" ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Netlist.Rng.create (seed + 17) in
      let c =
        Netlist.Generator.random ~rng ~num_inputs:8
          ~num_gates:(120 + (seed mod 80))
          ~num_dff:(seed mod 6) ~num_outputs:8 ()
      in
      let delta = Netlist.Delta.random ~seed ~frac:0.04 c in
      match Netlist.Delta.apply c delta with
      | Error e ->
          QCheck.Test.fail_reportf "delta apply failed: %s"
            (Netlist.Delta.error_to_string e)
      | Ok edited -> (
          let base_h = mapped_hypergraph c in
          let edited_h = mapped_hypergraph edited in
          let options =
            Kway.Options.make ~runs:2 ~fm_attempts:2 ~seed:(seed + 1)
              ~jobs:(Parallel.Pool.jobs_from_env ())
              ()
          in
          let library = Fpga.Library.xc3000 in
          match
            ( Kway.partition ~options ~library base_h,
              Kway.partition ~options ~library edited_h )
          with
          | Error _, _ | _, Error _ ->
              true (* infeasible random instances are acceptable *)
          | Ok base, Ok cold -> (
              let base_labels, base_replicated =
                Kway.labels_of_parts base_h base.Kway.parts
              in
              let proj =
                Projection.project ~base:base_h ~base_labels
                  ~base_dirty:base_replicated edited_h
              in
              let dirty_covers_unlabelled =
                Array.for_all2
                  (fun l d -> l >= 0 || d)
                  proj.Projection.labels proj.Projection.dirty
              in
              let warm =
                {
                  Kway.w_labels = proj.Projection.labels;
                  w_dirty = proj.Projection.dirty;
                  w_devices =
                    Array.of_list
                      (List.map (fun p -> p.Kway.device) base.Kway.parts);
                }
              in
              match Kway.warm_start ~options ~library ~warm edited_h with
              | Error e ->
                  QCheck.Test.fail_reportf "warm start failed: %s" e
              | Ok w ->
                  (match Kway.check edited_h w with
                  | Ok () -> ()
                  | Error e ->
                      ignore (QCheck.Test.fail_reportf "warm unsound: %s" e));
                  let cold_cost = cold.Kway.summary.Fpga.Cost.total_cost in
                  let warm_cost = w.Kway.summary.Fpga.Cost.total_cost in
                  if warm_cost > 1.5 *. cold_cost then
                    QCheck.Test.fail_reportf
                      "warm cost %.1f too far above cold %.1f" warm_cost
                      cold_cost
                  else dirty_covers_unlabelled)))

(* ------------------------------------------------------------------ *)
(* Options validation and cooperative cancellation                    *)
(* ------------------------------------------------------------------ *)

let expect_invalid label f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  | exception Invalid_argument _ -> ()

let test_kway_options_validation () =
  (* One rejected case per field, plus the accepted boundary. *)
  expect_invalid "runs 0" (fun () -> Kway.Options.make ~runs:0 ());
  expect_invalid "runs negative" (fun () -> Kway.Options.make ~runs:(-3) ());
  expect_invalid "max_passes 0" (fun () -> Kway.Options.make ~max_passes:0 ());
  expect_invalid "fm_attempts 0" (fun () -> Kway.Options.make ~fm_attempts:0 ());
  expect_invalid "jobs 0" (fun () -> Kway.Options.make ~jobs:0 ());
  expect_invalid "refine_rounds negative" (fun () ->
      Kway.Options.make ~refine_rounds:(-1) ());
  let o = Kway.Options.make ~runs:1 ~max_passes:1 ~fm_attempts:1 ~jobs:1
      ~refine_rounds:0 ()
  in
  checki "boundary accepted" 1 o.Kway.runs

let test_fm_config_validation () =
  expect_invalid "fm max_passes 0" (fun () ->
      Fm.Config.make ~max_passes:0
        ~area_ok:(fun _ _ -> true)
        ~score:(fun _ -> (0, 0, 0))
        ());
  expect_invalid "fm max_passes negative" (fun () ->
      Fm.Config.make ~max_passes:(-2)
        ~area_ok:(fun _ _ -> true)
        ~score:(fun _ -> (0, 0, 0))
        ())

let test_kway_cancellation () =
  let h = mapped_hypergraph (Netlist.Generator.alu ~bits:8 ()) in
  (* A hook that is already true cancels before any work happens. *)
  let options = Kway.Options.make ~runs:2 ~should_stop:(fun () -> true) () in
  (match Kway.partition ~options ~library:Fpga.Library.xc3000 h with
  | Error msg -> checkb "cancelled error" true (String.equal msg Kway.cancelled)
  | Ok _ -> Alcotest.fail "expected cancellation");
  (* A hook that trips after a few polls cancels mid-search. *)
  let poll_count = ref 0 in
  let options =
    Kway.Options.make ~runs:50
      ~should_stop:(fun () ->
        incr poll_count;
        !poll_count > 5)
      ()
  in
  (match Kway.partition ~options ~library:Fpga.Library.xc3000 h with
  | Error msg -> checkb "mid-run cancel" true (String.equal msg Kway.cancelled)
  | Ok _ -> Alcotest.fail "expected mid-run cancellation");
  checkb "hook was polled" true (!poll_count > 5)

let test_kway_default_hook_inert () =
  (* The default hook must not change results: same seed, with and
     without an explicitly-false hook, byte-identical telemetry. *)
  let h = mapped_hypergraph (Netlist.Generator.c17 ()) in
  let doc options =
    let obs = Obs.create () in
    match Kway.partition ~obs ~options ~library:Fpga.Library.xc3000 h with
    | Error e -> Alcotest.fail e
    | Ok _ ->
        Obs.Json.to_string
          (Obs.Snapshot.scrub_elapsed (Obs.Snapshot.to_json (Obs.snapshot obs)))
  in
  let base = doc (Kway.Options.make ~runs:2 ()) in
  let hooked = doc (Kway.Options.make ~runs:2 ~should_stop:(fun () -> false) ()) in
  checkb "hook never changes telemetry" true (String.equal base hooked)

let () =
  Alcotest.run "core"
    [
      ( "replication_potential",
        [
          Alcotest.test_case "Fig. 1 psi" `Quick test_psi_fig1;
          Alcotest.test_case "Fig. 2 psi" `Quick test_psi_fig2;
          Alcotest.test_case "single output" `Quick test_psi_single_output;
          Alcotest.test_case "edge supports" `Quick test_psi_disjoint_and_identical;
          Alcotest.test_case "distribution + r_T" `Quick test_distribution;
          Alcotest.test_case "threshold gate" `Quick test_replicable_threshold;
        ] );
      ( "gain",
        [
          Alcotest.test_case "Fig. 4 golden gains" `Quick test_gain_fig4_golden;
          Alcotest.test_case "threshold blocks replication" `Quick
            test_gain_threshold_blocks;
          qc qcheck_formula_matches_eval;
          qc qcheck_functional_gain_positive_cases;
          Alcotest.test_case "no duplicate candidates" `Quick
            test_no_duplicate_candidates;
          Alcotest.test_case "candidate operations" `Quick
            test_best_mask_change_candidates;
        ] );
      ( "bucket",
        [
          Alcotest.test_case "basics" `Quick test_bucket_basics;
          Alcotest.test_case "clamping" `Quick test_bucket_clamping;
          Alcotest.test_case "errors" `Quick test_bucket_errors;
          Alcotest.test_case "update fast path order" `Quick
            test_bucket_update_fast_path_order;
          Alcotest.test_case "top decay + interleaving" `Quick
            test_bucket_top_decay_and_interleaving;
          qc qcheck_bucket_matches_model;
        ] );
      ( "fm",
        [
          Alcotest.test_case "improves within balance" `Quick
            test_fm_improves_and_respects_balance;
          Alcotest.test_case "replication beats moves on Fig. 4" `Quick
            test_fm_replication_beats_plain_on_fig4;
          Alcotest.test_case "threshold respected" `Quick
            test_fm_replication_respects_threshold;
          Alcotest.test_case "replication helps on clustered" `Quick
            test_fm_replication_reduces_cut_on_clustered;
          qc qcheck_fm_leaves_consistent_state;
          qc qcheck_incremental_gains_exact;
          Alcotest.test_case "lazy gain mode" `Quick test_fm_lazy_gain_mode;
          Alcotest.test_case "oracle mode identical" `Quick
            test_fm_oracle_mode_identical;
          qc qcheck_fm_oracle_never_trips;
          Alcotest.test_case "staged never worse" `Quick test_fm_staged_never_worse;
          Alcotest.test_case "traditional model weaker" `Quick
            test_fm_traditional_model_weaker;
          Alcotest.test_case "two-device refinement config" `Quick
            test_two_device_config;
        ] );
      ( "coarsen",
        [
          Alcotest.test_case "structure" `Quick test_coarsen_structure;
          Alcotest.test_case "pin budget" `Quick test_coarsen_respects_pin_budget;
          Alcotest.test_case "multilevel init quality" `Quick
            test_multilevel_init_quality;
          Alcotest.test_case "per-axis weight caps" `Quick
            test_coarsen_weight_caps;
          qc qcheck_projection_sound;
          Alcotest.test_case "multilevel jobs-independent" `Quick
            test_multilevel_jobs_stable;
        ] );
      ( "kway",
        [
          Alcotest.test_case "single device" `Quick test_kway_single_device;
          Alcotest.test_case "multiple devices" `Quick test_kway_multi_device;
          Alcotest.test_case "with replication" `Quick test_kway_with_replication;
          Alcotest.test_case "deterministic" `Quick test_kway_deterministic;
          Alcotest.test_case "check catches corruption" `Quick
            test_kway_check_catches_corruption;
          Alcotest.test_case "check catches bad iobs/summary" `Quick
            test_kway_check_catches_bad_iobs_and_summary;
          Alcotest.test_case "refinement not worse" `Quick
            test_kway_refinement_not_worse;
          Alcotest.test_case "alternative library" `Quick test_kway_xc4000;
          Alcotest.test_case "demand arity pinned" `Quick test_demand_arity_pin;
          Alcotest.test_case "all builtin objectives" `Quick
            test_kway_objectives;
        ] );
      ( "telemetry",
        [
          qc qcheck_fm_telemetry_invariants;
          qc qcheck_kway_sound_on_generated_circuits;
        ] );
      ("warm start", [ qc qcheck_warm_start_sound_and_close ]);
      ( "options",
        [
          Alcotest.test_case "kway validation" `Quick
            test_kway_options_validation;
          Alcotest.test_case "fm validation" `Quick test_fm_config_validation;
          Alcotest.test_case "cancellation" `Quick test_kway_cancellation;
          Alcotest.test_case "default hook inert" `Quick
            test_kway_default_hook_inert;
        ] );
    ]
