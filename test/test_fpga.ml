(* Tests for the device library and the paper's cost model (eq. 1, eq. 2). *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

open Fpga

let sample = Device.make ~name:"D" ~capacity:100 ~terminals:50 ~price:120.0
    ~util_low:0.5 ~util_high:0.9 ()

let test_device_bounds () =
  checki "min_clbs" 50 (Device.min_clbs sample);
  checki "max_clbs" 90 (Device.max_clbs sample);
  checkf "price per clb" 1.2 (Device.price_per_clb sample);
  checkf "clb util" 0.75 (Device.clb_utilization sample ~clbs:75);
  checkf "iob util" 0.5 (Device.iob_utilization sample ~iobs:25)

let test_device_fits () =
  checkb "in window" true (Device.fits sample ~clbs:70 ~iobs:30);
  checkb "below low" false (Device.fits sample ~clbs:40 ~iobs:30);
  checkb "below low relaxed" true (Device.fits ~relax_low:true sample ~clbs:40 ~iobs:30);
  checkb "above high" false (Device.fits sample ~clbs:95 ~iobs:30);
  checkb "too many terminals" false (Device.fits sample ~clbs:70 ~iobs:51);
  checkb "zero clbs never fits" false (Device.fits ~relax_low:true sample ~clbs:0 ~iobs:0)

let test_device_rejects_bad () =
  let reject f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected rejection"
  in
  reject (fun () -> Device.make ~name:"x" ~capacity:0 ~terminals:1 ~price:1.0 ());
  reject (fun () -> Device.make ~name:"x" ~capacity:1 ~terminals:0 ~price:1.0 ());
  reject (fun () -> Device.make ~name:"x" ~capacity:1 ~terminals:1 ~price:0.0 ());
  reject (fun () ->
      Device.make ~name:"x" ~capacity:1 ~terminals:1 ~price:1.0 ~util_low:0.9
        ~util_high:0.5 ())

let test_xc3000_table1 () =
  (* The real XC3000 capacities and terminal counts of Table I. *)
  let expect = [ ("XC3020", 64, 64); ("XC3030", 100, 80); ("XC3042", 144, 96);
                 ("XC3064", 224, 120); ("XC3090", 320, 144) ] in
  List.iter
    (fun (name, cap, term) ->
      match Library.find Library.xc3000 name with
      | None -> Alcotest.fail ("missing device " ^ name)
      | Some d ->
          checki (name ^ " capacity") cap d.Device.capacity;
          checki (name ^ " terminals") term d.Device.terminals)
    expect;
  (* The reconstructed price curve must make bigger devices cheaper per
     CLB (the economics the paper's cost/interconnect tension relies on). *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        checkb "price/CLB decreasing with size" true
          (Device.price_per_clb b < Device.price_per_clb a);
        monotone rest
    | _ -> ()
  in
  monotone (Library.devices Library.xc3000)

let test_library_lookup () =
  checkb "find missing" true (Library.find Library.xc3000 "XC9999" = None);
  let l = Library.largest Library.xc3000 in
  Alcotest.check Alcotest.string "largest" "XC3090" l.Device.name;
  (match Library.by_efficiency Library.xc3000 with
  | first :: _ -> Alcotest.check Alcotest.string "most efficient" "XC3090" first.Device.name
  | [] -> Alcotest.fail "empty library");
  (match Library.smallest_fitting Library.xc3000 ~clbs:60 ~iobs:60 with
  | Some d -> Alcotest.check Alcotest.string "smallest fitting" "XC3020" d.Device.name
  | None -> Alcotest.fail "expected a fit");
  (* 60 CLBs but 70 terminals: XC3020 runs out of IOBs. *)
  (match Library.smallest_fitting ~relax_low:true Library.xc3000 ~clbs:60 ~iobs:70 with
  | Some d -> Alcotest.check Alcotest.string "terminal driven" "XC3030" d.Device.name
  | None -> Alcotest.fail "expected a fit");
  (match Library.smallest_fitting Library.xc3000 ~clbs:1000 ~iobs:10 with
  | Some _ -> Alcotest.fail "nothing should fit 1000 CLBs"
  | None -> ())

let test_library_rejects_bad () =
  (match Library.make [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty library accepted");
  match
    Library.make [ sample; Device.make ~name:"D" ~capacity:10 ~terminals:10 ~price:1.0 () ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate names accepted"

let test_cost_eq1_eq2 () =
  let d1 = Device.make ~name:"A" ~capacity:100 ~terminals:50 ~price:100.0 () in
  let d2 = Device.make ~name:"B" ~capacity:200 ~terminals:80 ~price:150.0 () in
  let placements =
    [
      Cost.place d1 ~clbs:80 ~iobs:25 ();
      Cost.place d1 ~clbs:60 ~iobs:40 ();
      Cost.place d2 ~clbs:150 ~iobs:65 ();
    ]
  in
  let s = Cost.summarize placements in
  checki "k" 3 s.Cost.num_partitions;
  checkf "eq. 1 total cost" 350.0 s.Cost.total_cost;
  (* eq. 2: (25+40+65) / (50+50+80) = 130/180 *)
  checkf "eq. 2 avg IOB util" (130.0 /. 180.0) s.Cost.avg_iob_utilization;
  checkf "avg CLB util" (290.0 /. 400.0) s.Cost.avg_clb_utilization;
  Alcotest.check
    Alcotest.(list (pair string int))
    "device counts" [ ("A", 2); ("B", 1) ] s.Cost.device_counts

let test_cost_feasibility () =
  let p_ok = Cost.place sample ~clbs:70 ~iobs:30 () in
  let p_low = Cost.place sample ~clbs:30 ~iobs:30 () in
  checkb "feasible" true (Cost.placement_feasible p_ok);
  checkb "below window" false (Cost.placement_feasible p_low);
  checkb "all feasible" true (Cost.all_feasible [ p_ok; p_ok ]);
  checkb "relax last only" true
    (Cost.all_feasible ~relax_low_last:true [ p_ok; p_low ]);
  checkb "relax last does not cover first" false
    (Cost.all_feasible ~relax_low_last:true [ p_low; p_ok ])

let test_xc4000 () =
  let l = Library.xc4000 in
  checki "five members" 5 (List.length (Library.devices l));
  (match Library.largest l with
  | d ->
      Alcotest.check Alcotest.string "largest" "XC4013" d.Device.name;
      checki "capacity" 576 d.Device.capacity);
  (* Same economics as the paper's family: bigger devices cheaper per CLB. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        checkb "price/CLB decreasing" true
          (Device.price_per_clb b < Device.price_per_clb a);
        monotone rest
    | _ -> ()
  in
  monotone (Library.devices l)

let test_min_feasible_cost () =
  (* 400 CLBs at the XC3090 rate (435/320) = 543.75; never below the
     cheapest single device. *)
  checkf "fractional bound" 543.75 (Library.min_feasible_cost Library.xc3000 ~clbs:400);
  checkf "floor at cheapest device" 100.0 (Library.min_feasible_cost Library.xc3000 ~clbs:1)

let test_resource_ops () =
  let v = Resource.make ~ffs:4 ~clbs:3 ~iobs:7 () in
  checki "arity" Resource.arity (Array.length v);
  checki "clb" 3 (Resource.get v Resource.clb);
  checki "ff" 4 (Resource.get v Resource.ff);
  checki "bram defaults to 0" 0 (Resource.get v Resource.bram);
  checki "io" 7 (Resource.get v Resource.io);
  (* Cell demands are shorter than arity; missing axes read as 0. *)
  checki "short vector primary" 5 (Resource.get [| 5 |] Resource.clb);
  checki "zero-extended read" 0 (Resource.get [| 5 |] Resource.ff);
  (match Resource.axis_of_name (Resource.axis_name Resource.dsp) with
  | Some a -> checki "axis name roundtrip" Resource.dsp a
  | None -> Alcotest.fail "axis_name not invertible");
  let dst = Resource.zero () in
  Resource.add_into dst v;
  Resource.add_into dst [| 10 |];
  checki "add primary of short src" 13 (Resource.get dst Resource.clb);
  checki "add leaves other axes" 4 (Resource.get dst Resource.ff);
  Resource.sub_into dst [| 10 |];
  checki "sub undoes add" 3 (Resource.get dst Resource.clb);
  checkb "covers itself" true (Resource.covers ~cap:dst v);
  checkb "covers fails on primary" false (Resource.covers ~cap:v [| 4 |]);
  checkb "covers zero-extends cap" false
    (Resource.covers ~cap:[| 9 |] (Resource.make ~clbs:1 ~iobs:1 ()))

let test_make_vector () =
  let d =
    Device.make_vector ~name:"V"
      ~resources:(Resource.make ~ffs:200 ~brams:8 ~dsps:4 ~clbs:100 ~iobs:50 ())
      ~price:120.0
      ~res_low:[| 0.5; 0.0; 0.0; 0.0; 0.0 |]
      ~res_high:[| 0.9; 1.0; 0.5; 1.0; 1.0 |]
      ()
  in
  checki "capacity cached from vector" 100 d.Device.capacity;
  checki "terminals cached from vector" 50 d.Device.terminals;
  checkf "util_low cached" 0.5 d.Device.util_low;
  checkf "util_high cached" 0.9 d.Device.util_high;
  checki "axis_max floor" 4 (Device.axis_max d Resource.bram);
  checki "axis_min ceil" 50 (Device.axis_min d Resource.clb);
  let caps = Device.demand_caps d in
  checki "demand_caps length" Resource.demand_arity (Array.length caps);
  checki "demand_caps primary" 90 caps.(Resource.clb);
  checkb "vector fit" true (Device.fits_demand d ~demand:[| 70; 150; 4; 2 |] ~iobs:30);
  checkb "secondary axis over" false
    (Device.fits_demand d ~demand:[| 70; 150; 5; 2 |] ~iobs:30);
  checkb "short demand fits" true (Device.fits_demand d ~demand:[| 70 |] ~iobs:30);
  checkb "primary window applies" false (Device.fits_demand d ~demand:[| 40 |] ~iobs:30);
  checkb "relax_low" true (Device.fits_demand ~relax_low:true d ~demand:[| 40 |] ~iobs:30);
  checkb "terminal budget applies" false
    (Device.fits_demand d ~demand:[| 70 |] ~iobs:51);
  (* A scalar-built device has no BRAM/DSP, so any such demand is over. *)
  checkb "scalar device rejects bram demand" false
    (Device.fits_demand sample ~demand:[| 70; 0; 1; 0 |] ~iobs:30);
  match
    Device.make_vector ~name:"x"
      ~resources:(Resource.make ~clbs:10 ~iobs:10 ())
      ~price:1.0 ~res_low:[| 0.9; 0.; 0.; 0.; 0. |]
      ~res_high:[| 0.5; 1.; 1.; 1.; 1. |] ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inverted per-axis window accepted"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_objective_costs () =
  let open Objective in
  let d = Device.make ~name:"A" ~capacity:100 ~terminals:50 ~price:123.0 () in
  checkf "paper device cost = price" 123.0 (paper.device_cost d);
  checkf "paper net cost is 0" 0.0 (paper.net_cost ~nets:37);
  checkb "paper total is bitwise the device cost" true
    (Int64.equal
       (Int64.bits_of_float (total_cost paper ~device_cost:350.25 ~cut_nets:99))
       (Int64.bits_of_float 350.25));
  checkb "paper is primary-feasibility" true (paper.feasibility = Primary);
  checkf "multi-personality device cost = price" 123.0
    (multi_personality.device_cost d);
  checkf "multi-personality net cost is 0" 0.0 (multi_personality.net_cost ~nets:37);
  checkb "multi-personality is vector-feasibility" true
    (multi_personality.feasibility = Vector);
  checkf "chiplet device cost = price" 123.0 (chiplet.device_cost d);
  (* 5 crossings at the interposer rate: 5 * 2.0 *)
  checkf "chiplet net cost" (5.0 *. chiplet_net_cost) (chiplet.net_cost ~nets:5);
  checkf "chiplet total" (350.0 +. (12.0 *. chiplet_net_cost))
    (total_cost chiplet ~device_cost:350.0 ~cut_nets:12);
  checkb "chiplet F-M minimises terminals" true
    (chiplet.split_objective = `Terminals && chiplet.refine_objective = `Terminals);
  checki "three builtins" 3 (List.length builtins);
  (match of_name "multi-personality" with
  | Ok o -> Alcotest.check Alcotest.string "lookup by name" "multi-personality" o.name
  | Error e -> Alcotest.fail e);
  match of_name "no-such-objective" with
  | Ok _ -> Alcotest.fail "unknown objective accepted"
  | Error msg ->
      List.iter
        (fun n -> checkb ("error lists " ^ n) true (contains msg n))
        names

let test_smallest_fitting_ties () =
  let mk name cap = Device.make ~name ~capacity:cap ~terminals:100 ~price:50.0 () in
  let a = mk "alpha" 64 and b = mk "beta" 64 and big = mk "gamma" 128 in
  let pick devs =
    match Library.smallest_fitting (Library.make devs) ~clbs:32 ~iobs:10 with
    | Some d -> d.Device.name
    | None -> Alcotest.fail "expected a fit"
  in
  Alcotest.check Alcotest.string "capacity breaks a price tie" "alpha"
    (pick [ big; b; a ]);
  Alcotest.check Alcotest.string "name breaks a price+capacity tie" "alpha"
    (pick [ b; a ]);
  Alcotest.check Alcotest.string "construction order irrelevant" "alpha"
    (pick [ a; b; big ]);
  let pick_demand devs =
    match
      Library.smallest_fitting_demand (Library.make devs) ~demand:[| 32 |] ~iobs:10
    with
    | Some d -> d.Device.name
    | None -> Alcotest.fail "expected a fit"
  in
  Alcotest.check Alcotest.string "demand path ties identically" "alpha"
    (pick_demand [ big; b; a ]);
  (* by_efficiency uses the same deterministic key. *)
  match Library.by_efficiency (Library.make [ b; a; big ]) with
  | first :: second :: _ ->
      Alcotest.check Alcotest.string "cheapest per CLB first" "gamma"
        first.Device.name;
      Alcotest.check Alcotest.string "ties by name" "alpha" second.Device.name
  | _ -> Alcotest.fail "by_efficiency too short"

let write_tmp tag contents =
  let path = Filename.temp_file ("fpgapart_" ^ tag) ".json" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let test_library_load () =
  let path =
    write_tmp "lib"
      {|{ "name": "test", "devices": [
           { "name": "A", "price": 100.0,
             "resources": { "clb": 64, "ff": 128, "io": 64 },
             "res_low":  { "clb": 0.5 },
             "res_high": { "clb": 0.95 } },
           { "name": "B", "capacity": 128, "terminals": 96, "price": 150.0,
             "util_low": 0.25, "util_high": 0.9 } ] }|}
  in
  (match Library.load path with
  | Error e -> Alcotest.fail e
  | Ok lib ->
      (match Library.find lib "A" with
      | Some a ->
          checki "vector clb capacity" 64 a.Device.capacity;
          checki "vector io -> terminals" 64 a.Device.terminals;
          checki "vector ff axis" 128 (Resource.get a.Device.resources Resource.ff);
          checki "res_low -> min_clbs" 32 (Device.min_clbs a);
          checki "res_high -> max_clbs" 60 (Device.max_clbs a)
      | None -> Alcotest.fail "missing device A");
      match Library.find lib "B" with
      | Some b ->
          checki "scalar capacity" 128 b.Device.capacity;
          checkf "scalar util_low" 0.25 b.Device.util_low
      | None -> Alcotest.fail "missing device B");
  (match
     Library.load
       (write_tmp "bad"
          {|{ "devices": [ { "name": "A", "price": 1.0,
                             "resources": { "clb": 4 } } ] }|})
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "device without io capacity accepted");
  (match
     Library.load
       (write_tmp "dup"
          {|{ "devices": [
               { "name": "A", "capacity": 4, "terminals": 4, "price": 1.0 },
               { "name": "A", "capacity": 8, "terminals": 8, "price": 2.0 } ] }|})
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate names accepted");
  match Library.load "/nonexistent/definitely-missing.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

(* The qcheck half of the equivalence satellite: on random scalar
   libraries, the vector-feasibility path fed 1-ary demands must make
   exactly the scalar path's decisions, device by device and library
   query by library query. (The whole-partitioner half is the golden
   compare in tools/check_objectives.sh.) *)
let test_scalar_vector_equivalence =
  QCheck.Test.make ~name:"1-ary vector path = scalar path" ~count:300
    QCheck.(pair small_int (pair (int_range 0 400) (int_range 0 250)))
    (fun (seed, (clbs, iobs)) ->
      let rng = Random.State.make [| seed; 0x5eed |] in
      let n = 1 + Random.State.int rng 5 in
      let devs =
        List.init n (fun i ->
            Device.make
              ~name:(Printf.sprintf "D%d" i)
              ~capacity:(1 + Random.State.int rng 300)
              ~terminals:(1 + Random.State.int rng 200)
              ~price:(float_of_int (1 + Random.State.int rng 500))
              ~util_low:(float_of_int (Random.State.int rng 50) /. 100.0)
              ~util_high:(float_of_int (50 + Random.State.int rng 51) /. 100.0)
              ())
      in
      let lib = Library.make devs in
      let relax_low = Random.State.bool rng in
      List.iter
        (fun d ->
          if
            Device.fits ~relax_low d ~clbs ~iobs
            <> Device.fits_demand ~relax_low d ~demand:[| clbs |] ~iobs
          then
            QCheck.Test.fail_reportf "fits disagrees on %s for clbs=%d iobs=%d"
              d.Device.name clbs iobs)
        devs;
      let name = function Some (d : Device.t) -> d.Device.name | None -> "-" in
      String.equal
        (name (Library.smallest_fitting ~relax_low lib ~clbs ~iobs))
        (name (Library.smallest_fitting_demand ~relax_low lib ~demand:[| clbs |] ~iobs)))

let test_paper_total_bitwise =
  QCheck.Test.make ~name:"paper total_cost bitwise-preserves device cost"
    ~count:500
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 10_000))
    (fun (a, nets) ->
      let cost = float_of_int a /. 7.0 in
      Int64.equal
        (Int64.bits_of_float
           (Objective.total_cost Objective.paper ~device_cost:cost ~cut_nets:nets))
        (Int64.bits_of_float cost))

let qc t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "fpga"
    [
      ( "device",
        [
          Alcotest.test_case "utilization window" `Quick test_device_bounds;
          Alcotest.test_case "fits" `Quick test_device_fits;
          Alcotest.test_case "rejects malformed" `Quick test_device_rejects_bad;
          Alcotest.test_case "vector devices" `Quick test_make_vector;
        ] );
      ( "resource",
        [ Alcotest.test_case "vector operations" `Quick test_resource_ops ] );
      ( "library",
        [
          Alcotest.test_case "Table I data" `Quick test_xc3000_table1;
          Alcotest.test_case "lookup and ordering" `Quick test_library_lookup;
          Alcotest.test_case "rejects malformed" `Quick test_library_rejects_bad;
          Alcotest.test_case "xc4000 family" `Quick test_xc4000;
          Alcotest.test_case "fractional lower bound" `Quick test_min_feasible_cost;
          Alcotest.test_case "deterministic tie-breaking" `Quick
            test_smallest_fitting_ties;
          Alcotest.test_case "JSON loading" `Quick test_library_load;
        ] );
      ( "cost",
        [
          Alcotest.test_case "eq. 1 and eq. 2" `Quick test_cost_eq1_eq2;
          Alcotest.test_case "feasibility" `Quick test_cost_feasibility;
        ] );
      ( "objective",
        [
          Alcotest.test_case "hand-computed costs" `Quick test_objective_costs;
          qc test_scalar_vector_equivalence;
          qc test_paper_total_bitwise;
        ] );
    ]
