(* Cmdliner-level tests for the shared CLI terms: environment-variable
   parsing must fail cleanly (naming the variable) rather than raising or
   silently clamping. *)

open Cmdliner

(* Evaluate a term against an argv and a simulated environment, capturing
   stderr. *)
let eval ?(argv = [| "test" |]) ?(env = fun _ -> None) term =
  let buf = Buffer.create 256 in
  let err = Format.formatter_of_buffer buf in
  let cmd = Cmd.v (Cmd.info "test") term in
  let result = Cmd.eval_value ~env ~err ~argv cmd in
  Format.pp_print_flush err ();
  (result, Buffer.contents buf)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let expect_parse_error label (result, errout) needle =
  (match result with
  | Error `Parse -> ()
  | Error `Term -> ()
  | Error `Exn -> Alcotest.failf "%s: evaluation raised" label
  | Error `Version | Ok _ -> Alcotest.failf "%s: bad value accepted" label);
  checkb
    (Printf.sprintf "%s: error mentions %s" label needle)
    true
    (contains errout needle)

let test_jobs_env_non_integer () =
  let env name = if name = "FPGAPART_JOBS" then Some "abc" else None in
  expect_parse_error "FPGAPART_JOBS=abc"
    (eval ~env (Cli_common.jobs ()))
    "FPGAPART_JOBS"

let test_jobs_env_non_positive () =
  let env name = if name = "FPGAPART_JOBS" then Some "0" else None in
  expect_parse_error "FPGAPART_JOBS=0"
    (eval ~env (Cli_common.jobs ()))
    "FPGAPART_JOBS";
  let env name = if name = "FPGAPART_JOBS" then Some "-3" else None in
  expect_parse_error "FPGAPART_JOBS=-3"
    (eval ~env (Cli_common.jobs ()))
    "FPGAPART_JOBS"

let test_jobs_flag_non_positive () =
  expect_parse_error "--jobs 0"
    (eval ~argv:[| "test"; "--jobs"; "0" |] (Cli_common.jobs ()))
    "jobs"

let test_jobs_good_values () =
  (match eval (Cli_common.jobs ()) with
  | Ok (`Ok n), _ -> checki "default jobs" 1 n
  | _ -> Alcotest.fail "default rejected");
  let env name = if name = "FPGAPART_JOBS" then Some "4" else None in
  (match eval ~env (Cli_common.jobs ()) with
  | Ok (`Ok n), _ -> checki "env jobs" 4 n
  | _ -> Alcotest.fail "FPGAPART_JOBS=4 rejected");
  (* An explicit flag beats the environment. *)
  match eval ~env ~argv:[| "test"; "--jobs"; "2" |] (Cli_common.jobs ()) with
  | Ok (`Ok n), _ -> checki "flag beats env" 2 n
  | _ -> Alcotest.fail "--jobs 2 rejected"

let test_runs_non_positive () =
  expect_parse_error "--runs 0"
    (eval ~argv:[| "test"; "--runs"; "0" |] (Cli_common.runs ()))
    "runs"

let test_socket_env () =
  let env name =
    if name = "FPGAPART_SOCKET" then Some "/tmp/x.sock" else None
  in
  (match eval ~env (Cli_common.socket ()) with
  | Ok (`Ok s), _ ->
      Alcotest.check Alcotest.string "env socket" "/tmp/x.sock" s
  | _ -> Alcotest.fail "FPGAPART_SOCKET rejected");
  (* Without flag or env the option is required. *)
  match eval (Cli_common.socket ()) with
  | Error `Parse, _ | Error `Term, _ -> ()
  | _ -> Alcotest.fail "missing --socket accepted"

let test_objective_values () =
  (match eval (Cli_common.objective ()) with
  | Ok (`Ok o), _ ->
      Alcotest.check Alcotest.string "default objective" "paper"
        o.Fpga.Objective.name
  | _ -> Alcotest.fail "default objective rejected");
  match
    eval
      ~argv:[| "test"; "--objective"; "chiplet" |]
      (Cli_common.objective ())
  with
  | Ok (`Ok o), _ ->
      Alcotest.check Alcotest.string "named objective" "chiplet"
        o.Fpga.Objective.name
  | _ -> Alcotest.fail "--objective chiplet rejected"

let test_objective_unknown () =
  let result =
    eval
      ~argv:[| "test"; "--objective"; "nope" |]
      (Cli_common.objective ())
  in
  (* The rejection must list the valid names. *)
  expect_parse_error "--objective nope" result "multi-personality"

let test_device_lib_paths () =
  (match Cli_common.library_of_path None with
  | Ok lib ->
      checkb "default library is XC3000" true
        (Option.is_some (Fpga.Library.find lib "XC3020"))
  | Error e -> Alcotest.fail e);
  match Cli_common.library_of_path (Some "/nonexistent/lib.json") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing device library file accepted"

let () =
  Alcotest.run "cli"
    [
      ( "jobs",
        [
          Alcotest.test_case "env non-integer" `Quick test_jobs_env_non_integer;
          Alcotest.test_case "env non-positive" `Quick
            test_jobs_env_non_positive;
          Alcotest.test_case "flag non-positive" `Quick
            test_jobs_flag_non_positive;
          Alcotest.test_case "good values" `Quick test_jobs_good_values;
        ] );
      ("runs", [ Alcotest.test_case "non-positive" `Quick test_runs_non_positive ]);
      ("socket", [ Alcotest.test_case "env" `Quick test_socket_env ]);
      ( "objective",
        [
          Alcotest.test_case "default and named" `Quick test_objective_values;
          Alcotest.test_case "unknown name" `Quick test_objective_unknown;
          Alcotest.test_case "device library paths" `Quick
            test_device_lib_paths;
        ] );
    ]
