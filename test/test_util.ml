(* Shared fixtures for the test suites. *)

let spec ?(area = 1) ?(demand = [||]) name inputs outputs supports =
  {
    Hypergraph.s_name = name;
    s_area = area;
    s_demand = demand;
    s_inputs = Array.of_list inputs;
    s_outputs = Array.of_list outputs;
    s_supports = Array.of_list supports;
  }

(* A deterministic random hypergraph: [n_cells] cells, each with 1-3
   outputs and 1-4 inputs drawn from earlier nets; a handful of driverless
   "primary" nets are external. *)
let random_hypergraph seed n_cells =
  let rng = Netlist.Rng.create seed in
  let next_net = ref 0 in
  let fresh_net () =
    let n = !next_net in
    incr next_net;
    n
  in
  let n_primary = 4 + Netlist.Rng.int rng 4 in
  let primary = List.init n_primary (fun _ -> fresh_net ()) in
  let available = ref (Array.of_list primary) in
  let specs = ref [] in
  for k = 0 to n_cells - 1 do
    let n_out = 1 + Netlist.Rng.int rng 3 in
    let n_in = 1 + Netlist.Rng.int rng 4 in
    (* Distinct input nets per cell, as real mapped CLBs have (the paper's
       per-pin cut vectors assume it). *)
    let picks = Netlist.Rng.sample rng n_in (Array.length !available) in
    let inputs = Array.map (fun k -> !available.(k)) picks in
    let outputs = Array.init n_out (fun _ -> fresh_net ()) in
    let supports =
      Array.init n_out (fun _ ->
          let m = ref Bitvec.empty in
          for i = 0 to n_in - 1 do
            if Netlist.Rng.bool rng then m := Bitvec.add i !m
          done;
          !m)
    in
    for o = 0 to n_out - 1 do
      if Bitvec.is_empty supports.(o) then
        supports.(o) <- Bitvec.singleton (Netlist.Rng.int rng n_in)
    done;
    for i = 0 to n_in - 1 do
      if not (Array.exists (fun s -> Bitvec.mem i s) supports) then begin
        let o = Netlist.Rng.int rng n_out in
        supports.(o) <- Bitvec.add i supports.(o)
      end
    done;
    specs :=
      spec (Printf.sprintf "c%d" k) (Array.to_list inputs)
        (Array.to_list outputs) (Array.to_list supports)
      :: !specs;
    available := Array.append !available outputs
  done;
  Hypergraph.create ~num_nets:!next_net ~external_nets:primary (List.rev !specs)

let random_mask rng full =
  Bitvec.fold
    (fun i acc -> if Netlist.Rng.bool rng then Bitvec.add i acc else acc)
    full Bitvec.empty

(* The Fig. 4 fixture (see test_hypergraph.ml for the derivation): cell M
   (id 0) with 5 inputs and outputs X1, X2; expected gains are
   G_m = -1, G_tr = -2, G_r = +2 with X2 (output index 1) migrating. *)
let fig4_hypergraph () =
  let no_input_cell name out = spec name [] [ out ] [ Bitvec.empty ] in
  Hypergraph.create ~num_nets:9 ~external_nets:[ 7; 8 ]
    [
      spec "M" [ 0; 1; 2; 3; 4 ] [ 5; 6 ]
        [ Bitvec.of_list [ 0; 2; 3; 4 ]; Bitvec.of_list [ 1 ] ];
      no_input_cell "D1" 0;
      no_input_cell "D2" 1;
      no_input_cell "D3" 2;
      no_input_cell "D4" 3;
      no_input_cell "D5" 4;
      spec "RX1" [ 5 ] [ 7 ] [ Bitvec.of_list [ 0 ] ];
      spec "RX2" [ 6 ] [ 8 ] [ Bitvec.of_list [ 0 ] ];
    ]

let fig4_state () =
  let h = fig4_hypergraph () in
  let on_b = function 1 | 2 | 7 -> true | _ -> false in
  (h, Partition_state.create h ~init_on_b:on_b)
