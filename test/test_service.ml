(* Tests for the partitioning service: the framing codec, the canonical
   content digest, the LRU, the protocol codec, and the daemon itself
   end-to-end over a real Unix-domain socket — submit, cache hit on a
   permuted resubmission, backpressure, cancellation, timeout, malformed
   frames, graceful shutdown. *)

module J = Obs.Json

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Codec                                                              *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let doc =
    J.Obj
      [
        ("verb", J.String "submit");
        ("netlist", J.String (String.make 1000 'x'));
        ("n", J.Int 42);
      ]
  in
  Service.Codec.write_frame a doc;
  Service.Codec.write_frame a (J.List [ J.Null ]);
  (match Service.Codec.read_frame b with
  | Ok doc' -> checkb "first frame" true (doc = doc')
  | Error e -> Alcotest.fail (Service.Codec.read_error_to_string e));
  (match Service.Codec.read_frame b with
  | Ok doc' -> checkb "second frame" true (doc' = J.List [ J.Null ])
  | Error e -> Alcotest.fail (Service.Codec.read_error_to_string e));
  Unix.close a;
  (* Clean EOF at a frame boundary. *)
  (match Service.Codec.read_frame b with
  | Error `Eof -> ()
  | _ -> Alcotest.fail "expected Eof");
  Unix.close b

let test_codec_bad_frames () =
  let write_raw fd s =
    ignore (Unix.write fd (Bytes.of_string s) 0 (String.length s))
  in
  (* Oversized declared length is rejected before any payload read. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  write_raw a "\xff\xff\xff\xff";
  (match Service.Codec.read_frame b with
  | Error (`Oversized _) -> ()
  | _ -> Alcotest.fail "expected Oversized");
  Unix.close a;
  Unix.close b;
  (* Truncated payload. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  write_raw a "\x00\x00\x00\x0a{\"a\"";
  Unix.close a;
  (match Service.Codec.read_frame b with
  | Error `Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated");
  Unix.close b;
  (* Valid frame, invalid JSON. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  write_raw a "\x00\x00\x00\x05hello";
  (match Service.Codec.read_frame b with
  | Error (`Malformed _) -> ()
  | _ -> Alcotest.fail "expected Malformed");
  Unix.close a;
  Unix.close b

(* ------------------------------------------------------------------ *)
(* LRU                                                                *)
(* ------------------------------------------------------------------ *)

let test_lru () =
  let l = Service.Lru.create ~cap:2 in
  Service.Lru.add l "a" 1;
  Service.Lru.add l "b" 2;
  checki "len" 2 (Service.Lru.length l);
  (* Touch "a" so "b" is the eviction victim. *)
  checkb "find a" true (Service.Lru.find l "a" = Some 1);
  Service.Lru.add l "c" 3;
  checki "len capped" 2 (Service.Lru.length l);
  checkb "b evicted" true (Service.Lru.find l "b" = None);
  checkb "a kept" true (Service.Lru.find l "a" = Some 1);
  checkb "c kept" true (Service.Lru.find l "c" = Some 3);
  (* Overwriting a key does not grow the table. *)
  Service.Lru.add l "c" 30;
  checki "len stable" 2 (Service.Lru.length l);
  checkb "c updated" true (Service.Lru.find l "c" = Some 30);
  match Service.Lru.create ~cap:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cap 0 accepted"

(* ------------------------------------------------------------------ *)
(* Digest: canonicalisation and cache keys                            *)
(* ------------------------------------------------------------------ *)

(* A semantics-preserving permutation of a .bench text: INPUT lines
   first (unchanged), everything else reversed. The parser resolves
   names independent of order, so this parses to the same circuit
   modulo node numbering. *)
let permute_bench text =
  let lines = String.split_on_char '\n' text in
  let is_input l = String.length l >= 5 && String.sub l 0 5 = "INPUT" in
  let inputs = List.filter is_input lines in
  let rest =
    List.filter (fun l -> (not (is_input l)) && String.trim l <> "") lines
  in
  String.concat "\n" (inputs @ List.rev rest) ^ "\n"

let parse_ok text =
  match Netlist.Bench_format.parse text with
  | Ok c -> c
  | Error e -> Alcotest.fail e

let test_digest_permutation_invariant () =
  let c = Netlist.Generator.alu ~bits:8 () in
  let text = Netlist.Bench_format.to_string c in
  let c1 = parse_ok text and c2 = parse_ok (permute_bench text) in
  let fingerprint c =
    Service.Digest.hypergraph_fingerprint
      (Techmap.Mapper.to_hypergraph
         (Techmap.Mapper.map (Service.Digest.canonical_circuit c)))
  in
  checks "canonical fingerprints agree" (fingerprint c1) (fingerprint c2);
  (* Canonicalisation reorders nodes but preserves behaviour: compare
     simulations with inputs and outputs matched by signal name. *)
  let canon = Service.Digest.canonical_circuit c1 in
  let names c ids =
    Array.map (fun i -> (Netlist.Circuit.node c i).Netlist.Circuit.name) ids
  in
  let in1 = names c1 c1.Netlist.Circuit.inputs
  and in2 = names canon canon.Netlist.Circuit.inputs
  and out1 = names c1 c1.Netlist.Circuit.outputs
  and out2 = names canon canon.Netlist.Circuit.outputs in
  let reindex src dst vec =
    let tbl = Hashtbl.create 64 in
    Array.iteri (fun i n -> Hashtbl.replace tbl n vec.(i)) src;
    Array.map (fun n -> Hashtbl.find tbl n) dst
  in
  let rng = Netlist.Rng.create 5 in
  let vecs1 = Netlist.Simulate.random_vectors rng c1 16 in
  let vecs2 = Array.map (reindex in1 in2) vecs1 in
  let r1 = Netlist.Simulate.run c1 vecs1
  and r2 = Netlist.Simulate.run canon vecs2 in
  Array.iteri
    (fun cycle row1 ->
      checkb "canonical circuit equivalent" true
        (reindex out1 out2 row1 = r2.(cycle)))
    r1

let test_digest_options () =
  let base = Core.Kway.Options.make ~runs:3 ~seed:9 () in
  let same_but_jobs = { base with Core.Kway.jobs = 8 } in
  let other_seed = Core.Kway.Options.make ~runs:3 ~seed:10 () in
  checks "jobs never shapes the key"
    (Service.Digest.options_fingerprint base)
    (Service.Digest.options_fingerprint same_but_jobs);
  checkb "seed shapes the key" true
    (Service.Digest.options_fingerprint base
     <> Service.Digest.options_fingerprint other_seed)

(* ------------------------------------------------------------------ *)
(* Protocol                                                           *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let reqs =
    [
      Service.Protocol.Submit
        {
          name = "c17";
          format = Service.Protocol.Bench;
          netlist = "INPUT(a)\nOUTPUT(a)\n";
          options = Core.Kway.Options.make ~runs:2 ~seed:3 ();
          envelope = Service.Protocol.default_envelope;
        };
      Service.Protocol.Submit
        {
          name = "c17";
          format = Service.Protocol.Bench;
          netlist = "INPUT(a)\nOUTPUT(a)\n";
          options = Core.Kway.Options.make ~runs:2 ~seed:3 ();
          envelope =
            { Service.Protocol.tenant = "acme"; priority = 3; portfolio = true };
        };
      Service.Protocol.Submit_batch
        {
          items =
            [
              {
                Service.Protocol.b_name = "c17";
                b_format = Service.Protocol.Bench;
                b_netlist = "INPUT(a)\nOUTPUT(a)\n";
                b_options = Core.Kway.Options.make ~runs:2 ~seed:3 ();
              };
              {
                Service.Protocol.b_name = "c17b";
                b_format = Service.Protocol.Bench;
                b_netlist = "INPUT(b)\nOUTPUT(b)\n";
                b_options = Core.Kway.Options.make ~runs:1 ~seed:7 ();
              };
            ];
          envelope =
            {
              Service.Protocol.tenant = "batch";
              priority = -1;
              portfolio = false;
            };
        };
      Service.Protocol.Fleet_stats;
      Service.Protocol.Status 4;
      Service.Protocol.Result { job = 9; wait = true };
      Service.Protocol.Cancel 2;
      Service.Protocol.Stats;
      Service.Protocol.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match
        Service.Protocol.request_of_json (Service.Protocol.request_to_json req)
      with
      | Ok req' ->
          (* options contains a closure; compare via re-encoding. *)
          checkb "request roundtrip" true
            (Service.Protocol.request_to_json req'
            = Service.Protocol.request_to_json req)
      | Error (_, e) -> Alcotest.fail e)
    reqs

let test_protocol_bad_requests () =
  let bad_code expected json =
    match Service.Protocol.request_of_json json with
    | Ok _ -> Alcotest.fail "bad request accepted"
    | Error (code, _) -> checks "error code" expected code
  in
  let bad = bad_code Service.Protocol.code_bad_request in
  let v = ("v", J.Int Service.Protocol.protocol_version) in
  bad (J.Obj [ v; ("verb", J.String "frobnicate") ]);
  bad (J.Obj [ v; ("verb", J.String "status") ]);
  (* missing job *)
  bad (J.Obj [ v; ("verb", J.String "submit"); ("name", J.String "x") ]);
  (* Options the engine would reject fail at decode time. *)
  bad
    (J.Obj
       [
         v;
         ("verb", J.String "submit");
         ("name", J.String "x");
         ("format", J.String "bench");
         ("netlist", J.String "INPUT(a)\nOUTPUT(a)\n");
         ("options", J.Obj [ ("runs", J.Int 0) ]);
       ]);
  (* Unknown objective names are bad requests too. *)
  bad
    (J.Obj
       [
         v;
         ("verb", J.String "submit");
         ("name", J.String "x");
         ("format", J.String "bench");
         ("netlist", J.String "INPUT(a)\nOUTPUT(a)\n");
         ("options", J.Obj [ ("objective", J.String "frobnicate") ]);
       ]);
  (* The version gate fires before verb dispatch, with its own code. *)
  let unsupported = bad_code Service.Protocol.code_unsupported_version in
  unsupported J.Null;
  unsupported (J.Obj [ ("verb", J.String "stats") ]);
  unsupported (J.Obj [ ("v", J.Int 99); ("verb", J.String "stats") ]);
  (* A v1 client is refused outright — the gate is strict equality, not
     backward tolerance — so it can never see replies missing the v2
     [timings] field. *)
  unsupported (J.Obj [ ("v", J.Int 1); ("verb", J.String "stats") ]);
  unsupported (J.Obj [ ("v", J.String "2"); ("verb", J.String "stats") ])

(* ------------------------------------------------------------------ *)
(* End-to-end daemon tests                                            *)
(* ------------------------------------------------------------------ *)

let temp_socket () =
  let path = Filename.temp_file "fpgapart_test" ".sock" in
  Sys.remove path;
  path

(* Run a server in a background thread; give the test a connected-client
   view; shut everything down afterwards even on failure. *)
let with_server ?(config = fun c -> c) f =
  let path = temp_socket () in
  let cfg = config (Service.Server.default_config ~socket_path:path) in
  let ready = Mutex.create () and ready_cond = Condition.create () in
  let is_ready = ref false in
  let on_ready () =
    Mutex.lock ready;
    is_ready := true;
    Condition.broadcast ready_cond;
    Mutex.unlock ready
  in
  let server_result = ref (Ok ()) in
  let server =
    Thread.create (fun () -> server_result := Service.Server.run ~on_ready cfg) ()
  in
  Mutex.lock ready;
  while not !is_ready do
    Condition.wait ready_cond ready
  done;
  Mutex.unlock ready;
  let shutdown () =
    (match Service.Client.rpc ~socket:path Service.Protocol.Shutdown with
    | Ok _ | Error _ -> ());
    Thread.join server
  in
  Fun.protect ~finally:shutdown (fun () -> f path);
  match !server_result with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("server: " ^ e)

let rpc_ok path req =
  match Service.Client.rpc ~socket:path req with
  | Error e -> Alcotest.fail e
  | Ok reply -> (
      match Service.Client.ok_or_error reply with
      | Ok reply -> reply
      | Error (code, msg) -> Alcotest.failf "%s [%s]" msg code)

let rpc_err path req =
  match Service.Client.rpc ~socket:path req with
  | Error e -> Alcotest.fail e
  | Ok reply -> (
      match Service.Client.ok_or_error reply with
      | Ok _ -> Alcotest.fail "expected a protocol error"
      | Error (code, _) -> code)

let submit_req ?(runs = 2) ?(seed = 1)
    ?(envelope = Service.Protocol.default_envelope) name text =
  Service.Protocol.Submit
    {
      name;
      format = Service.Protocol.Bench;
      netlist = text;
      options = Core.Kway.Options.make ~runs ~seed ();
      envelope;
    }

let int_field name reply =
  match Option.bind (J.member name reply) J.to_int with
  | Some v -> v
  | None -> Alcotest.failf "reply lacks int field %S" name

let str_field name reply =
  match Option.bind (J.member name reply) J.to_str with
  | Some v -> v
  | None -> Alcotest.failf "reply lacks string field %S" name

let counter stats name =
  match
    Option.bind (J.member "obs" stats) (fun obs ->
        Option.bind (J.member "counters" obs) (J.member name))
  with
  | Some (J.Int n) -> n
  | _ -> 0

let test_server_cache_hit_on_permuted_resubmit () =
  with_server (fun path ->
      let text =
        Netlist.Bench_format.to_string (Netlist.Generator.c17 ())
      in
      (* First submission computes. *)
      let r1 = rpc_ok path (submit_req "c17" text) in
      checkb "first not cached" false
        (Option.value ~default:false
           (Option.bind (J.member "cached" r1) J.to_bool));
      let job1 = int_field "job" r1 in
      let r1 =
        rpc_ok path (Service.Protocol.Result { job = job1; wait = true })
      in
      let doc1 =
        match J.member "result" r1 with
        | Some d -> d
        | None -> Alcotest.fail "no result document"
      in
      (* Byte-permuted but semantically identical: served from cache,
         byte-identical document, engine not re-run. *)
      let r2 = rpc_ok path (submit_req "c17" (permute_bench text)) in
      checkb "second cached" true
        (Option.value ~default:false
           (Option.bind (J.member "cached" r2) J.to_bool));
      let doc2 =
        match J.member "result" r2 with
        | Some d -> d
        | None -> Alcotest.fail "no cached document"
      in
      checks "cached reply byte-identical" (J.to_string doc1) (J.to_string doc2);
      ignore str_field;
      let stats =
        match J.member "stats" (rpc_ok path Service.Protocol.Stats) with
        | Some s -> s
        | None -> Alcotest.fail "no stats"
      in
      checki "one cache hit" 1 (counter stats "service.cache_hit");
      checki "one cache miss" 1 (counter stats "service.cache_miss");
      (* A different seed is a different key: miss. *)
      let r3 = rpc_ok path (submit_req ~seed:2 "c17" text) in
      checkb "different options not cached" false
        (Option.value ~default:false
           (Option.bind (J.member "cached" r3) J.to_bool));
      ignore
        (rpc_ok path
           (Service.Protocol.Result { job = int_field "job" r3; wait = true })))

let astr_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  go 0

let qcheck_delta_codec_roundtrip =
  (* The wire format for deltas must carry every op faithfully: encode a
     random delta, decode it, and get structurally equal ops back. *)
  QCheck.Test.make ~name:"delta wire codec roundtrips" ~count:80
    QCheck.(small_int)
    (fun seed ->
      let rng = Netlist.Rng.create (seed + 31) in
      let c =
        Netlist.Generator.random ~rng ~num_inputs:4 ~num_gates:30 ~num_dff:3
          ~num_outputs:5 ()
      in
      let delta = Netlist.Delta.random ~seed ~frac:0.1 c in
      match
        Service.Protocol.delta_of_json (Service.Protocol.delta_to_json delta)
      with
      | Ok decoded -> decoded = delta
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let result_doc path job =
  let r = rpc_ok path (Service.Protocol.Result { job; wait = true }) in
  match J.member "result" r with
  | Some d -> J.to_string d
  | None -> Alcotest.fail "no result document"

let stats_counter path name =
  match J.member "stats" (rpc_ok path Service.Protocol.Stats) with
  | Some s -> counter s name
  | None -> Alcotest.fail "no stats"

let qcheck_resubmit_noop_byte_identity =
  (* Satellite invariant: a resubmit carrying the empty delta replies the
     cached submit document byte-for-byte and runs no F-M at all — the
     service-level fm_applied_ops counter must not move. *)
  QCheck.Test.make ~name:"empty-delta resubmit is byte-identical, runs nothing"
    ~count:4
    QCheck.(int_range 0 1000)
    (fun seed ->
      let ok = ref false in
      with_server (fun path ->
          let rng = Netlist.Rng.create seed in
          let c =
            Netlist.Generator.random ~rng ~num_inputs:5 ~num_gates:40
              ~num_dff:4 ~num_outputs:6 ()
          in
          let text = Netlist.Bench_format.to_string c in
          let r1 = rpc_ok path (submit_req "base" text) in
          let job1 = int_field "job" r1 in
          let digest1 = str_field "digest" r1 in
          let doc1 = result_doc path job1 in
          let fm_before = stats_counter path "service.fm_applied_ops" in
          let resubmit base =
            rpc_ok path
              (Service.Protocol.Resubmit
                 { name = "noop"; base; delta = []; options = None })
          in
          let check_reply r =
            if
              not
                (Option.value ~default:false
                   (Option.bind (J.member "cached" r) J.to_bool))
            then Alcotest.fail "noop resubmit not served from cache";
            match J.member "result" r with
            | Some d -> checks "byte-identical document" doc1 (J.to_string d)
            | None -> Alcotest.fail "noop resubmit reply lacks result"
          in
          check_reply (resubmit (`Job job1));
          check_reply (resubmit (`Digest digest1));
          checki "no F-M ran" fm_before
            (stats_counter path "service.fm_applied_ops");
          checki "two noop resubmits" 2
            (stats_counter path "service.resubmit_noop");
          ok := true);
      !ok)

let test_server_resubmit_warm () =
  with_server (fun path ->
      let text = Netlist.Bench_format.to_string (Netlist.Generator.c17 ()) in
      let r1 = rpc_ok path (submit_req "base" text) in
      let job1 = int_field "job" r1 in
      ignore (result_doc path job1);
      (* A real edit against a live base warm-starts: no cold fallback. *)
      let delta =
        [ Netlist.Delta.Set_output { net = "16"; output = true } ]
      in
      let r2 =
        rpc_ok path
          (Service.Protocol.Resubmit
             { name = "eco"; base = `Job job1; delta; options = None })
      in
      checkb "warm, not cold fallback" false
        (Option.value ~default:false
           (Option.bind (J.member "cold_fallback" r2) J.to_bool));
      ignore (result_doc path (int_field "job" r2));
      checki "one warm resubmit" 1 (stats_counter path "service.resubmit_warm");
      checki "warm run did not fall back" 0
        (stats_counter path "service.resubmit_warm_failed");
      (* Same edit again: served from the lineage-key cache. *)
      let r3 =
        rpc_ok path
          (Service.Protocol.Resubmit
             { name = "eco"; base = `Job job1; delta; options = None })
      in
      checkb "warm result cached" true
        (Option.value ~default:false
           (Option.bind (J.member "cached" r3) J.to_bool));
      (* A broken delta is a typed bad_request naming the offender. *)
      match
        Service.Client.rpc ~socket:path
          (Service.Protocol.Resubmit
             {
               name = "bad";
               base = `Job job1;
               delta = [ Netlist.Delta.Remove_cell "10" ];
               options = None;
             })
      with
      | Error e -> Alcotest.fail e
      | Ok reply -> (
          match Service.Client.ok_or_error reply with
          | Ok _ -> Alcotest.fail "referenced removal accepted"
          | Error (code, msg) ->
              checks "bad request" Service.Protocol.code_bad_request code;
              checkb "names the broken pair" true
                (astr_contains msg "10" && astr_contains msg "22")))

let test_server_resubmit_objective_mismatch () =
  (* A warm lineage keeps one objective: a resubmit whose options name a
     different objective than the base's is a typed bad_request telling
     the caller to submit cold. *)
  with_server (fun path ->
      let text = Netlist.Bench_format.to_string (Netlist.Generator.c17 ()) in
      let r1 = rpc_ok path (submit_req "base" text) in
      let job1 = int_field "job" r1 in
      ignore (result_doc path job1);
      match
        Service.Client.rpc ~socket:path
          (Service.Protocol.Resubmit
             {
               name = "switch";
               base = `Job job1;
               delta = [ Netlist.Delta.Set_output { net = "16"; output = true } ];
               options =
                 Some
                   (Core.Kway.Options.make ~runs:2 ~seed:1
                      ~objective:Fpga.Objective.chiplet ());
             })
      with
      | Error e -> Alcotest.fail e
      | Ok reply -> (
          match Service.Client.ok_or_error reply with
          | Ok _ -> Alcotest.fail "objective switch on a warm lineage accepted"
          | Error (code, msg) ->
              checks "bad request" Service.Protocol.code_bad_request code;
              checkb "names both objectives" true
                (astr_contains msg "chiplet" && astr_contains msg "paper");
              (* The same options as the base pass the guard. *)
              let r2 =
                rpc_ok path
                  (Service.Protocol.Resubmit
                     {
                       name = "same";
                       base = `Job job1;
                       delta =
                         [
                           Netlist.Delta.Set_output
                             { net = "16"; output = true };
                         ];
                       options =
                         Some (Core.Kway.Options.make ~runs:2 ~seed:1 ());
                     })
              in
              ignore (result_doc path (int_field "job" r2))))

let test_server_resubmit_evicted_base_cold_fallback () =
  (* cache_cap 1: the second submission evicts the base's cached context,
     so a resubmit against it must flag cold_fallback and still run. *)
  with_server
    ~config:(fun c -> { c with Service.Server.cache_cap = 1 })
    (fun path ->
      let base = Netlist.Bench_format.to_string (Netlist.Generator.c17 ()) in
      let r1 = rpc_ok path (submit_req "base" base) in
      let job1 = int_field "job" r1 in
      ignore (result_doc path job1);
      let other =
        Netlist.Bench_format.to_string
          (Netlist.Generator.ripple_adder ~bits:4 ())
      in
      let r2 = rpc_ok path (submit_req "evictor" other) in
      ignore (result_doc path (int_field "job" r2));
      let r3 =
        rpc_ok path
          (Service.Protocol.Resubmit
             {
               name = "eco";
               base = `Job job1;
               delta = [ Netlist.Delta.Set_output { net = "16"; output = true } ];
               options = None;
             })
      in
      checkb "cold fallback flagged" true
        (Option.value ~default:false
           (Option.bind (J.member "cold_fallback" r3) J.to_bool));
      ignore (result_doc path (int_field "job" r3));
      checki "counted as cold fallback" 1
        (stats_counter path "service.resubmit_cold_fallback");
      checki "no warm resubmit" 0 (stats_counter path "service.resubmit_warm");
      (* An unknown base is a typed not_found. *)
      match
        Service.Client.rpc ~socket:path
          (Service.Protocol.Resubmit
             { name = "x"; base = `Job 9999; delta = []; options = None })
      with
      | Error e -> Alcotest.fail e
      | Ok reply -> (
          match Service.Client.ok_or_error reply with
          | Ok _ -> Alcotest.fail "unknown base accepted"
          | Error (code, _) ->
              checks "not found" Service.Protocol.code_not_found code))

let test_server_backpressure_and_cancel () =
  (* queue_cap 1: one job runs, one queues, the third is refused. *)
  with_server
    ~config:(fun c -> { c with Service.Server.queue_cap = 1 })
    (fun path ->
      let slow =
        Netlist.Bench_format.to_string
          (Netlist.Generator.multiplier ~bits:16 ())
      in
      let submit seed = rpc_ok path (submit_req ~runs:500 ~seed "slow" slow) in
      let j1 = int_field "job" (submit 1) in
      let j2 = int_field "job" (submit 2) in
      let code = rpc_err path (submit_req ~runs:500 ~seed:3 "slow" slow) in
      checks "typed overload error" Service.Protocol.code_overloaded code;
      (* Cancel both; the running one stops at the next engine poll. *)
      ignore (rpc_ok path (Service.Protocol.Cancel j1));
      ignore (rpc_ok path (Service.Protocol.Cancel j2));
      let wait j =
        rpc_err path (Service.Protocol.Result { job = j; wait = true })
      in
      checks "running job cancelled" Service.Protocol.code_cancelled (wait j1);
      checks "queued job cancelled" Service.Protocol.code_cancelled (wait j2);
      let stats =
        match J.member "stats" (rpc_ok path Service.Protocol.Stats) with
        | Some s -> s
        | None -> Alcotest.fail "no stats"
      in
      checki "rejections counted" 1 (counter stats "service.rejected");
      checki "cancellations counted" 2 (counter stats "service.cancelled"))

let test_server_timeout () =
  with_server
    ~config:(fun c -> { c with Service.Server.timeout = Some 0.05 })
    (fun path ->
      let slow =
        Netlist.Bench_format.to_string
          (Netlist.Generator.multiplier ~bits:16 ())
      in
      let r = rpc_ok path (submit_req ~runs:500 "slow" slow) in
      let code =
        rpc_err path
          (Service.Protocol.Result { job = int_field "job" r; wait = true })
      in
      checks "typed timeout error" Service.Protocol.code_timeout code)

let test_server_survives_garbage () =
  with_server (fun path ->
      (* Raw garbage on one connection... *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let s = "\x00\x00\x00\x07garbage" in
      ignore (Unix.write fd (Bytes.of_string s) 0 (String.length s));
      (match Service.Codec.read_frame fd with
      | Ok reply -> (
          match Service.Client.ok_or_error reply with
          | Error (code, _) ->
              checks "typed bad_request" Service.Protocol.code_bad_request code
          | Ok _ -> Alcotest.fail "garbage accepted")
      | Error e -> Alcotest.fail (Service.Codec.read_error_to_string e));
      Unix.close fd;
      (* ...and an oversized length prefix on another... *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      ignore (Unix.write fd (Bytes.of_string "\x7f\xff\xff\xff") 0 4);
      (match Service.Codec.read_frame fd with
      | Ok reply ->
          checkb "oversized refused" true
            (Result.is_error (Service.Client.ok_or_error reply))
      | Error `Eof -> ()
      | Error e -> Alcotest.fail (Service.Codec.read_error_to_string e));
      Unix.close fd;
      (* ...while the daemon keeps serving. *)
      let stats =
        match J.member "stats" (rpc_ok path Service.Protocol.Stats) with
        | Some s -> s
        | None -> Alcotest.fail "no stats"
      in
      checkb "bad requests counted" true
        (counter stats "service.bad_requests" >= 2))

(* A job big enough to need a real multi-device split rolls its F-M
   telemetry up into the service-wide throughput metrics: applied ops and
   rescored cells as counters, and one moves/sec observation per job in
   the service.fm_moves_per_sec histogram (wall-derived, hence the
   _per_sec suffix that the determinism scrub masks). *)
let test_server_throughput_metrics () =
  with_server (fun path ->
      let text =
        Netlist.Bench_format.to_string
          (Netlist.Generator.multiplier ~bits:16 ())
      in
      let r = rpc_ok path (submit_req ~runs:1 "mult16" text) in
      ignore
        (rpc_ok path
           (Service.Protocol.Result { job = int_field "job" r; wait = true }));
      let stats =
        match J.member "stats" (rpc_ok path Service.Protocol.Stats) with
        | Some s -> s
        | None -> Alcotest.fail "no stats"
      in
      checkb "fm ops rolled up" true
        (counter stats "service.fm_applied_ops" > 0);
      checkb "rescored cells rolled up" true
        (counter stats "service.fm_rescored_cells" > 0);
      let hist_count name =
        match
          Option.bind (J.member "obs" stats) (fun obs ->
              Option.bind (J.member "histograms" obs) (fun hs ->
                  Option.bind (J.member name hs) (fun h ->
                      Option.bind (J.member "count" h) J.to_int)))
        with
        | Some n -> n
        | None -> 0
      in
      checki "one moves/sec observation per executed job" 1
        (hist_count "service.fm_moves_per_sec"))

let test_server_shutdown_refuses_new_work () =
  with_server (fun path ->
      (* Keep the executor busy so the drain cannot finish under us:
         connections stay open and the [stopping] flag is observable. *)
      let slow =
        Netlist.Bench_format.to_string
          (Netlist.Generator.multiplier ~bits:16 ())
      in
      let conn =
        match Service.Client.connect path with
        | Ok c -> c
        | Error e -> Alcotest.fail e
      in
      Fun.protect
        ~finally:(fun () -> Service.Client.close conn)
        (fun () ->
          let ask req =
            match Service.Client.request conn req with
            | Ok reply -> Service.Client.ok_or_error reply
            | Error e -> Alcotest.fail e
          in
          let j1 =
            match ask (submit_req ~runs:500 "slow" slow) with
            | Ok reply -> int_field "job" reply
            | Error (code, msg) -> Alcotest.failf "%s [%s]" msg code
          in
          ignore (rpc_ok path Service.Protocol.Shutdown);
          (* The daemon is draining: the still-open connection keeps
             answering, but new work is refused with a typed error. *)
          let text =
            Netlist.Bench_format.to_string (Netlist.Generator.c17 ())
          in
          (match ask (submit_req "c17" text) with
          | Ok _ -> Alcotest.fail "draining daemon accepted a submission"
          | Error (code, _) ->
              checks "draining refuses submissions"
                Service.Protocol.code_shutting_down code);
          (* Cancel lets the drain complete promptly. *)
          match ask (Service.Protocol.Cancel j1) with
          | Ok _ -> ()
          | Error (code, msg) -> Alcotest.failf "%s [%s]" msg code))

(* ------------------------------------------------------------------ *)
(* Observability: health, metrics, timings, lifecycle traces, logs    *)
(* ------------------------------------------------------------------ *)

let contains ~needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let test_server_health () =
  with_server
    ~config:(fun c -> { c with Service.Server.queue_cap = 7 })
    (fun path ->
      let health reply =
        match J.member "health" reply with
        | Some h -> h
        | None -> Alcotest.fail "no health object"
      in
      let h = health (rpc_ok path Service.Protocol.Health) in
      checks "accepting" "accepting" (str_field "state" h);
      checki "protocol version" Service.Protocol.protocol_version
        (int_field "protocol_version" h);
      checki "stats schema version" Experiments.Obs_report.schema_version
        (int_field "stats_schema_version" h);
      checki "configured queue cap" 7 (int_field "queue_cap" h);
      checki "idle queue depth" 0 (int_field "queue_depth" h);
      checki "idle inflight" 0 (int_field "inflight" h);
      checki "no jobs yet" 0 (int_field "jobs_total" h);
      checkb "uptime present" true
        (match Option.bind (J.member "uptime_secs" h) J.to_float with
        | Some u -> u >= 0.0
        | None -> false);
      (* A completed job shows up in the registration count. *)
      let text = Netlist.Bench_format.to_string (Netlist.Generator.c17 ()) in
      let job = int_field "job" (rpc_ok path (submit_req "c17" text)) in
      ignore (rpc_ok path (Service.Protocol.Result { job; wait = true }));
      let h = health (rpc_ok path Service.Protocol.Health) in
      checki "job counted" 1 (int_field "jobs_total" h);
      checki "drained queue" 0 (int_field "queue_depth" h))

let test_server_metrics_exposition () =
  with_server (fun path ->
      let text = Netlist.Bench_format.to_string (Netlist.Generator.c17 ()) in
      let job = int_field "job" (rpc_ok path (submit_req "c17" text)) in
      ignore (rpc_ok path (Service.Protocol.Result { job; wait = true }));
      ignore (rpc_ok path (submit_req "c17" text));
      (* cache hit *)
      let reply = rpc_ok path Service.Protocol.Metrics in
      let doc =
        match Option.bind (J.member "metrics" reply) J.to_str with
        | Some text -> text
        | None -> Alcotest.fail "no metrics text"
      in
      checkb "EOF terminated" true
        (String.length doc >= 6
        && String.sub doc (String.length doc - 6) 6 = "# EOF\n");
      (* The continuously-maintained gauges. *)
      List.iter
        (fun family ->
          checkb (family ^ " gauge present") true
            (contains ~needle:("# TYPE fpgapart_" ^ family ^ " gauge") doc))
        [
          "queue_depth"; "queue_capacity"; "inflight_jobs"; "cache_entries";
          "cache_capacity"; "cache_hit_ratio"; "uptime_seconds";
          "gc_heap_words"; "gc_major_collections";
        ];
      checkb "idle queue depth sample" true
        (contains ~needle:"fpgapart_queue_depth 0\n" doc);
      checkb "hit ratio sample" true
        (contains ~needle:"fpgapart_cache_hit_ratio 0.5" doc);
      (* SLO latency histograms, one observation per executed job (the
         cache hit contributes to e2e only). *)
      List.iter
        (fun (family, expected) ->
          checkb (family ^ " histogram present") true
            (contains ~needle:("# TYPE fpgapart_" ^ family ^ " histogram") doc);
          checkb (family ^ " count") true
            (contains
               ~needle:(Printf.sprintf "fpgapart_%s_count %d" family expected)
               doc);
          checkb (family ^ " +Inf cumulative") true
            (contains
               ~needle:
                 (Printf.sprintf "fpgapart_%s_bucket{le=\"+Inf\"} %d" family
                    expected)
               doc))
        [
          ("service_queue_wait_seconds", 1);
          ("service_run_seconds", 1);
          ("service_e2e_seconds", 2);
        ];
      (* Counters from the Obs sink, renamed to the Prometheus charset. *)
      checkb "requests counter" true
        (contains ~needle:"fpgapart_service_requests_total" doc);
      checkb "cache hit counter" true
        (contains ~needle:"fpgapart_service_cache_hit_total 1" doc);
      (* The queue-wait blind spot stays closed: the native histogram is
         in the exposition too. *)
      checkb "queue wait native histogram" true
        (contains ~needle:"# TYPE fpgapart_service_queue_wait_ms histogram" doc))

let timings_of reply =
  match J.member "timings" reply with
  | Some t ->
      let f name = int_field name t in
      (f "decode_ms", f "queue_wait_ms", f "run_ms", f "encode_ms", f "total_ms")
  | None -> Alcotest.fail "reply lacks timings"

let test_server_reply_timings () =
  with_server (fun path ->
      let text = Netlist.Bench_format.to_string (Netlist.Generator.c17 ()) in
      let t0 = Unix.gettimeofday () in
      let job = int_field "job" (rpc_ok path (submit_req "c17" text)) in
      let reply = rpc_ok path (Service.Protocol.Result { job; wait = true }) in
      let client_elapsed_ms =
        int_of_float ((Unix.gettimeofday () -. t0) *. 1000.) + 1
      in
      let decode, queue_wait, run, encode, total = timings_of reply in
      List.iter
        (fun (name, v) -> checkb (name ^ " non-negative") true (v >= 0))
        [
          ("decode", decode); ("queue_wait", queue_wait); ("run", run);
          ("encode", encode); ("total", total);
        ];
      (* The parts sum to the total within scheduling/lock tolerance, and
         the total never exceeds what the client measured around the
         whole round trip. *)
      let parts = decode + queue_wait + run + encode in
      checkb "parts sum to total (tolerance 100ms)" true
        (abs (total - parts) <= 100);
      checkb "total within client-observed latency" true
        (total <= client_elapsed_ms + 100);
      (* A cache hit replies with fresh timings: no run, no queue. *)
      let hit = rpc_ok path (submit_req "c17" text) in
      let _, queue_wait_h, run_h, encode_h, total_h = timings_of hit in
      checki "cached queue wait" 0 queue_wait_h;
      checki "cached run" 0 run_h;
      checki "cached encode" 0 encode_h;
      checkb "cached total small" true (total_h <= 1000);
      (* The cached result document itself carries no timings — they live
         in the envelope, preserving byte-identity. *)
      (match J.member "result" hit with
      | Some doc -> checkb "no timings inside result doc" true
          (J.member "timings" doc = None)
      | None -> Alcotest.fail "no result");
      (* The queue-wait histogram saw the executed job. *)
      let stats =
        match J.member "stats" (rpc_ok path Service.Protocol.Stats) with
        | Some s -> s
        | None -> Alcotest.fail "no stats"
      in
      let hist_count name =
        match
          Option.bind (J.member "obs" stats) (fun obs ->
              Option.bind (J.member "histograms" obs) (fun hs ->
                  Option.bind (J.member name hs) (fun h ->
                      Option.bind (J.member "count" h) J.to_int)))
        with
        | Some n -> n
        | None -> 0
      in
      checki "queue wait observed once" 1 (hist_count "service.queue_wait_ms");
      checki "e2e observed for run and hit" 2 (hist_count "service.e2e_ms"))

let test_server_lifecycle_trace () =
  let trace_path = Filename.temp_file "fpgapart_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove trace_path with Sys_error _ -> ())
    (fun () ->
      with_server
        ~config:(fun c ->
          { c with Service.Server.trace_path = Some trace_path })
        (fun path ->
          let text =
            Netlist.Bench_format.to_string (Netlist.Generator.c17 ())
          in
          let wait_result name seed =
            let job =
              int_field "job" (rpc_ok path (submit_req ~seed name text))
            in
            ignore
              (rpc_ok path (Service.Protocol.Result { job; wait = true }));
            job
          in
          let j1 = wait_result "c17" 1 in
          let j2 = wait_result "c17" 2 in
          checkb "two distinct jobs" true (j1 <> j2));
      (* The server wrote the trace during shutdown. *)
      let ic = open_in_bin trace_path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let json =
        match J.of_string text with
        | Ok j -> j
        | Error e -> Alcotest.fail ("trace not JSON: " ^ e)
      in
      let events =
        match J.member "traceEvents" json with
        | Some (J.List evs) -> evs
        | _ -> Alcotest.fail "no traceEvents"
      in
      (* Per job (= pid lane): the complete lifecycle span set, each span
         with a non-negative duration. *)
      let lifecycle =
        [ "decode"; "canonicalise"; "queue_wait"; "partition"; "encode_reply" ]
      in
      List.iter
        (fun pid ->
          let names =
            List.filter_map
              (fun ev ->
                match
                  ( Option.bind (J.member "ph" ev) J.to_str,
                    Option.bind (J.member "pid" ev) J.to_int )
                with
                | Some "X", Some p when p = pid ->
                    (match Option.bind (J.member "dur" ev) J.to_float with
                    | Some d -> checkb "span duration >= 0" true (d >= 0.0)
                    | None -> Alcotest.fail "complete event lacks dur");
                    Option.bind (J.member "name" ev) J.to_str
                | _ -> None)
              events
          in
          List.iter
            (fun span ->
              checkb
                (Printf.sprintf "job %d has span %s" pid span)
                true
                (List.mem span names))
            lifecycle;
          checki
            (Printf.sprintf "job %d span count" pid)
            (List.length lifecycle) (List.length names))
        [ 1; 2 ])

(* The end-to-end face of the log determinism contract: the same
   serialized workload, run twice (and under a different engine --jobs),
   emits byte-identical scrubbed info-level logs. *)
let test_server_scrubbed_logs_deterministic () =
  let capture jobs =
    let buf = Buffer.create 1024 in
    with_server
      ~config:(fun c ->
        {
          c with
          Service.Server.jobs;
          log = Obs.Log.to_buffer ~scrub:true buf;
        })
      (fun path ->
        let text =
          Netlist.Bench_format.to_string (Netlist.Generator.c17 ())
        in
        let job = int_field "job" (rpc_ok path (submit_req "c17" text)) in
        ignore (rpc_ok path (Service.Protocol.Result { job; wait = true }));
        ignore (rpc_ok path (submit_req "c17" text));
        ignore (rpc_ok path (Service.Protocol.Cancel job)));
    Buffer.contents buf
  in
  let a = capture 1 in
  let b = capture 1 in
  let c = capture 2 in
  checkb "log non-empty" true (String.length a > 0);
  checks "identical runs, identical logs" a b;
  checks "log independent of --jobs" a c;
  (* Sanity: the lifecycle events are actually in there, in order. *)
  let order =
    [ "job.enqueue"; "job.dequeue"; "job.done"; "job.cache_hit" ]
  in
  ignore
    (List.fold_left
       (fun from event ->
         let needle = Printf.sprintf "\"event\":\"%s\"" event in
         let rec find i =
           if i + String.length needle > String.length a then
             Alcotest.failf "log lacks %s after offset %d" event from
           else if String.sub a i (String.length needle) = needle then i
           else find (i + 1)
         in
         find from)
       0 order);
  (* Every lifecycle line names its job correlation id. *)
  checkb "correlation ids present" true (contains ~needle:"\"corr\":\"" a)

let () =
  Alcotest.run "service"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "bad frames" `Quick test_codec_bad_frames;
        ] );
      ("lru", [ Alcotest.test_case "eviction and refresh" `Quick test_lru ]);
      ( "digest",
        [
          Alcotest.test_case "permutation invariant" `Quick
            test_digest_permutation_invariant;
          Alcotest.test_case "options fingerprint" `Quick test_digest_options;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "bad requests" `Quick test_protocol_bad_requests;
          QCheck_alcotest.to_alcotest qcheck_delta_codec_roundtrip;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "cache hit on permuted resubmit" `Quick
            test_server_cache_hit_on_permuted_resubmit;
          QCheck_alcotest.to_alcotest qcheck_resubmit_noop_byte_identity;
          Alcotest.test_case "resubmit warm start" `Quick
            test_server_resubmit_warm;
          Alcotest.test_case "resubmit rejects objective switch" `Quick
            test_server_resubmit_objective_mismatch;
          Alcotest.test_case "resubmit after eviction falls back cold" `Quick
            test_server_resubmit_evicted_base_cold_fallback;
          Alcotest.test_case "backpressure and cancel" `Quick
            test_server_backpressure_and_cancel;
          Alcotest.test_case "timeout" `Quick test_server_timeout;
          Alcotest.test_case "survives garbage" `Quick
            test_server_survives_garbage;
          Alcotest.test_case "throughput metrics" `Quick
            test_server_throughput_metrics;
          Alcotest.test_case "shutdown refuses new work" `Quick
            test_server_shutdown_refuses_new_work;
        ] );
      ( "observability",
        [
          Alcotest.test_case "health probe" `Quick test_server_health;
          Alcotest.test_case "openmetrics exposition" `Quick
            test_server_metrics_exposition;
          Alcotest.test_case "reply timings" `Quick test_server_reply_timings;
          Alcotest.test_case "per-job lifecycle trace" `Quick
            test_server_lifecycle_trace;
          Alcotest.test_case "scrubbed logs byte-deterministic" `Quick
            test_server_scrubbed_logs_deterministic;
        ] );
    ]
