(* Tests for the fleet layer: the weighted fair queue, the persistent
   disk cache (including corrupt-record and torn-tail recovery), the
   client's retry backoff, the stale-socket bind probe, batched
   submission through the single-process engine, and the scheduler
   end-to-end — multi-worker fan-out over real forked worker processes,
   SIGKILL fault injection with exactly-once requeue, portfolio racing,
   and disk-cache persistence across a fleet restart.

   The end-to-end tests spawn real worker processes and need the
   fpgapart binary; dune passes its path in FPGAPART_BIN. *)

module J = Obs.Json
module P = Service.Protocol
module C = Service.Client

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Fair queue                                                         *)
(* ------------------------------------------------------------------ *)

let push_ok q ~tenant ?(priority = 0) v =
  match Fleet.Fair_queue.push q ~tenant ~priority v with
  | Ok () -> ()
  | Error (`Tenant_full _) -> Alcotest.fail "unexpected Tenant_full"

let test_fair_queue_weights () =
  let q =
    Fleet.Fair_queue.create ~weights:[ ("a", 2) ] ~cap:16 ()
  in
  (* Backlog both tenants, then pop everything: tenant a (weight 2)
     gets two serves per turn, b (weight 1) one. *)
  for i = 0 to 5 do
    push_ok q ~tenant:"a" (Printf.sprintf "a%d" i)
  done;
  for i = 0 to 2 do
    push_ok q ~tenant:"b" (Printf.sprintf "b%d" i)
  done;
  let order =
    List.init 9 (fun _ ->
        match Fleet.Fair_queue.pop q with
        | Some v -> v
        | None -> Alcotest.fail "queue drained early")
  in
  Alcotest.(check (list string))
    "2:1 interleave"
    [ "a0"; "a1"; "b0"; "a2"; "a3"; "b1"; "a4"; "a5"; "b2" ]
    order;
  checkb "empty" true (Fleet.Fair_queue.pop q = None)

let test_fair_queue_priorities () =
  let q = Fleet.Fair_queue.create ~cap:16 () in
  push_ok q ~tenant:"t" ~priority:0 "low1";
  push_ok q ~tenant:"t" ~priority:5 "high";
  push_ok q ~tenant:"t" ~priority:0 "low2";
  Alcotest.(check (list string))
    "priority desc, FIFO within" [ "high"; "low1"; "low2" ]
    (List.init 3 (fun _ -> Option.get (Fleet.Fair_queue.pop q)));
  (* position reports the within-tenant index. *)
  push_ok q ~tenant:"t" ~priority:0 "x";
  push_ok q ~tenant:"t" ~priority:9 "y";
  checkb "position of x" true
    (Fleet.Fair_queue.position q ~tenant:"t" (String.equal "x") = Some 1);
  checkb "position of y" true
    (Fleet.Fair_queue.position q ~tenant:"t" (String.equal "y") = Some 0)

let test_fair_queue_backpressure () =
  let q = Fleet.Fair_queue.create ~cap:2 () in
  push_ok q ~tenant:"noisy" 1;
  push_ok q ~tenant:"noisy" 2;
  (match Fleet.Fair_queue.push q ~tenant:"noisy" ~priority:0 3 with
  | Error (`Tenant_full d) -> checki "full depth" 2 d
  | Ok () -> Alcotest.fail "expected Tenant_full");
  (* The cap is per tenant: a quiet tenant is unaffected. *)
  push_ok q ~tenant:"quiet" 1;
  checki "total" 3 (Fleet.Fair_queue.length q);
  checki "noisy depth" 2 (Fleet.Fair_queue.depth q "noisy");
  checki "quiet depth" 1 (Fleet.Fair_queue.depth q "quiet")

(* Conservation property: whatever mix of tenants, priorities and
   interleaved pushes, pops return every accepted item exactly once. *)
let test_fair_queue_conservation =
  QCheck.Test.make ~name:"fair queue loses and duplicates nothing" ~count:100
    QCheck.(
      list (pair (int_range 0 4) (int_range (-3) 3)))
    (fun pushes ->
      let q = Fleet.Fair_queue.create ~weights:[ ("t0", 3) ] ~cap:8 () in
      let accepted = ref [] in
      List.iteri
        (fun i (tenant, priority) ->
          let tenant = Printf.sprintf "t%d" tenant in
          match Fleet.Fair_queue.push q ~tenant ~priority i with
          | Ok () -> accepted := i :: !accepted
          | Error (`Tenant_full _) -> ())
        pushes;
      let drained = Fleet.Fair_queue.drain q in
      List.sort compare drained = List.sort compare !accepted
      && Fleet.Fair_queue.length q = 0)

(* ------------------------------------------------------------------ *)
(* Disk cache                                                         *)
(* ------------------------------------------------------------------ *)

let temp_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fpgapart-fleet-%d-%d" (Unix.getpid ()) (Random.int 100000))
  in
  dir

let open_cache dir =
  match Fleet.Disk_cache.open_dir dir with
  | Ok d -> d
  | Error e -> Alcotest.fail ("disk cache: " ^ e)

let doc_of_int i = J.Obj [ ("v", J.Int i); ("payload", J.String (String.make 64 'x')) ]

let test_disk_cache_roundtrip () =
  let dir = temp_dir () in
  let d = open_cache dir in
  for i = 1 to 20 do
    Fleet.Disk_cache.add d (Printf.sprintf "key%d" i) (doc_of_int i)
  done;
  checki "len" 20 (Fleet.Disk_cache.length d);
  checkb "find" true (Fleet.Disk_cache.find d "key7" = Some (doc_of_int 7));
  checkb "mem" true (Fleet.Disk_cache.mem d "key20");
  checkb "miss" true (Fleet.Disk_cache.find d "absent" = None);
  (* First write for a key wins; a duplicate add is a no-op. *)
  Fleet.Disk_cache.add d "key7" (doc_of_int 999);
  checkb "dup add ignored" true
    (Fleet.Disk_cache.find d "key7" = Some (doc_of_int 7));
  Fleet.Disk_cache.close d;
  (* Reload from disk: the index comes back. *)
  let d2 = open_cache dir in
  checki "reloaded len" 20 (Fleet.Disk_cache.length d2);
  checkb "reloaded find" true
    (Fleet.Disk_cache.find d2 "key13" = Some (doc_of_int 13));
  checki "no corruption" 0 (Fleet.Disk_cache.corrupt_skipped d2);
  Fleet.Disk_cache.close d2

let test_disk_cache_corrupt_record_skipped () =
  let dir = temp_dir () in
  let d = open_cache dir in
  Fleet.Disk_cache.add d "alpha" (doc_of_int 1);
  Fleet.Disk_cache.add d "beta" (doc_of_int 2);
  Fleet.Disk_cache.add d "gamma" (doc_of_int 3);
  Fleet.Disk_cache.close d;
  (* Flip one byte inside the beta record's document body. The lengths
     still frame the record, so the scan must skip exactly that record
     (checksum mismatch) and keep serving alpha and gamma. *)
  let seg = Filename.concat dir "cache-0.seg" in
  let fd = Unix.openfile seg [ Unix.O_RDWR ] 0 in
  let size = (Unix.fstat fd).Unix.st_size in
  let record_len = size / 3 in
  ignore (Unix.lseek fd (record_len + (record_len / 2)) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "!") 0 1);
  Unix.close fd;
  let d2 = open_cache dir in
  checki "one record skipped" 1 (Fleet.Disk_cache.corrupt_skipped d2);
  checki "two keys survive" 2 (Fleet.Disk_cache.length d2);
  checkb "alpha ok" true (Fleet.Disk_cache.find d2 "alpha" = Some (doc_of_int 1));
  checkb "gamma ok" true (Fleet.Disk_cache.find d2 "gamma" = Some (doc_of_int 3));
  checkb "beta gone" true (Fleet.Disk_cache.find d2 "beta" = None);
  Fleet.Disk_cache.close d2

let test_disk_cache_torn_tail () =
  let dir = temp_dir () in
  let d = open_cache dir in
  Fleet.Disk_cache.add d "whole" (doc_of_int 1);
  Fleet.Disk_cache.close d;
  (* Append half a record: a plausible header whose lengths run past
     EOF — the crash-mid-append shape. The scan must stop at the last
     whole record, and new writes must rotate to a fresh segment so
     index offsets keep matching the O_APPEND write position. *)
  let seg = Filename.concat dir "cache-0.seg" in
  let fd = Unix.openfile seg [ Unix.O_WRONLY; Unix.O_APPEND ] 0 in
  let torn = Bytes.make 30 '\x01' in
  ignore (Unix.write fd torn 0 (Bytes.length torn));
  Unix.close fd;
  let d2 = open_cache dir in
  checkb "whole record survives" true
    (Fleet.Disk_cache.find d2 "whole" = Some (doc_of_int 1));
  checkb "torn tail counted" true (Fleet.Disk_cache.corrupt_skipped d2 >= 1);
  Fleet.Disk_cache.add d2 "fresh" (doc_of_int 2);
  checkb "fresh key lands" true
    (Fleet.Disk_cache.find d2 "fresh" = Some (doc_of_int 2));
  Fleet.Disk_cache.close d2;
  (* And the whole thing reloads cleanly again. *)
  let d3 = open_cache dir in
  checki "both keys" 2 (Fleet.Disk_cache.length d3);
  checkb "fresh reloads" true
    (Fleet.Disk_cache.find d3 "fresh" = Some (doc_of_int 2));
  Fleet.Disk_cache.close d3

(* ------------------------------------------------------------------ *)
(* Client retry backoff                                               *)
(* ------------------------------------------------------------------ *)

let test_backoff_schedule () =
  let b = { C.Backoff.attempts = 5; base = 0.1; cap = 0.5; jitter = 0.5 } in
  (* Zero jitter (the default rand) makes the schedule the pure capped
     exponential: 0.1, 0.2, 0.4, 0.5 (capped). *)
  let sched = C.Backoff.schedule b in
  checki "four delays for five attempts" 4 (List.length sched);
  List.iter2
    (fun want got -> checkb "delay" true (abs_float (want -. got) < 1e-9))
    [ 0.1; 0.2; 0.4; 0.5 ] sched;
  (* Full jitter pulls each delay down by up to [jitter * delay]. *)
  let low = C.Backoff.schedule ~rand:(fun () -> 0.999999) b in
  List.iter2
    (fun full jittered ->
      checkb "jittered below full" true (jittered < full);
      checkb "jittered above floor" true (jittered >= full *. 0.5 -. 1e-6))
    [ 0.1; 0.2; 0.4; 0.5 ] low;
  (* Degenerate config: one attempt means no delays. *)
  checki "single attempt" 0
    (List.length (C.Backoff.schedule { b with attempts = 1 }))

let test_retry_connection_refused () =
  (* No listener: rpc_retry must try [attempts] times, sleeping the
     schedule between tries, then surface the connect error. *)
  let sleeps = ref [] in
  let b = { C.Backoff.attempts = 3; base = 0.01; cap = 0.1; jitter = 0.0 } in
  let sock = Filename.temp_file "fleet-retry" ".sock" in
  Sys.remove sock;
  (match
     C.rpc_retry ~backoff:b
       ~sleep:(fun s -> sleeps := s :: !sleeps)
       ~socket:sock P.Health
   with
  | Ok _ -> Alcotest.fail "expected connect failure"
  | Error _ -> ());
  checki "slept between attempts" 2 (List.length !sleeps)

(* ------------------------------------------------------------------ *)
(* Stale socket probe                                                 *)
(* ------------------------------------------------------------------ *)

let test_stale_socket_bind () =
  let path = Filename.temp_file "fleet-stale" ".sock" in
  Sys.remove path;
  (* A socket file nobody is listening on — the corpse of a SIGKILLed
     daemon. Binding must detect it dead (connect refused) and unlink. *)
  let corpse = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind corpse (Unix.ADDR_UNIX path);
  Unix.close corpse;  (* closed without listen: connects are refused *)
  checkb "corpse exists" true (Sys.file_exists path);
  (match Service.Server.bind_socket path with
  | Ok fd -> Unix.close fd; Sys.remove path
  | Error e -> Alcotest.fail ("stale socket not reclaimed: " ^ e));
  (* A live listener must NOT be clobbered. *)
  let live = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind live (Unix.ADDR_UNIX path);
  Unix.listen live 1;
  (match Service.Server.bind_socket path with
  | Ok _ -> Alcotest.fail "bound over a live daemon"
  | Error _ -> ());
  checkb "live socket kept" true (Sys.file_exists path);
  Unix.close live;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Batched submission through the single-process engine               *)
(* ------------------------------------------------------------------ *)

let tiny_bench =
  "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nc = AND(a, b)\nf = NOT(c)\n"

let temp_socket () =
  let path = Filename.temp_file "fpgapart-fleet-test" ".sock" in
  Sys.remove path;
  path

let with_server ?(config = fun c -> c) f =
  let path = temp_socket () in
  let cfg = config (Service.Server.default_config ~socket_path:path) in
  let ready = Mutex.create () and ready_cond = Condition.create () in
  let is_ready = ref false in
  let on_ready () =
    Mutex.lock ready;
    is_ready := true;
    Condition.broadcast ready_cond;
    Mutex.unlock ready
  in
  let server_result = ref (Ok ()) in
  let server =
    Thread.create (fun () -> server_result := Service.Server.run ~on_ready cfg) ()
  in
  Mutex.lock ready;
  while not !is_ready do
    Condition.wait ready_cond ready
  done;
  Mutex.unlock ready;
  let shutdown () =
    (match C.rpc ~socket:path P.Shutdown with Ok _ | Error _ -> ());
    Thread.join server
  in
  Fun.protect ~finally:shutdown (fun () -> f path);
  match !server_result with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("server: " ^ e)

let rpc_ok path req =
  match C.rpc ~socket:path req with
  | Error e -> Alcotest.fail e
  | Ok reply -> (
      match C.ok_or_error reply with
      | Ok reply -> reply
      | Error (code, msg) -> Alcotest.failf "%s [%s]" msg code)

let int_field name reply =
  match Option.bind (J.member name reply) J.to_int with
  | Some v -> v
  | None -> Alcotest.failf "reply lacks int field %S" name

let batch_item ?(seed = 1) name netlist =
  {
    P.b_name = name;
    b_format = P.Bench;
    b_netlist = netlist;
    b_options = Core.Kway.Options.make ~runs:1 ~seed ();
  }

let test_submit_batch_roundtrip () =
  with_server (fun path ->
      let reply =
        rpc_ok path
          (P.Submit_batch
             {
               items =
                 [
                   batch_item "one" tiny_bench;
                   batch_item "two" tiny_bench ~seed:2;
                   batch_item "same-as-one" tiny_bench;
                 ];
               envelope = P.default_envelope;
             })
      in
      let items =
        match J.member "items" reply with
        | Some (J.List l) -> l
        | _ -> Alcotest.fail "no items list"
      in
      checki "one reply per item" 3 (List.length items);
      (* Every item got its own job id; all three deliver a result. *)
      let ids = List.map (int_field "job") items in
      checki "distinct ids" 3 (List.length (List.sort_uniq compare ids));
      List.iter
        (fun id ->
          let r = rpc_ok path (P.Result { job = id; wait = true }) in
          checkb "has result" true (J.member "result" r <> None))
        ids;
      (* The batch counters advanced. *)
      let stats = rpc_ok path P.Stats in
      let counters =
        Option.get
          (Option.bind
             (Option.bind (J.member "stats" stats) (J.member "obs"))
             (J.member "counters"))
      in
      checkb "batch counter" true
        (match Option.bind (J.member "service.batches" counters) J.to_int with
        | Some n -> n >= 1
        | None -> false))

(* ------------------------------------------------------------------ *)
(* Fleet end-to-end (real worker processes)                           *)
(* ------------------------------------------------------------------ *)

let worker_exe () =
  match Sys.getenv_opt "FPGAPART_BIN" with
  | Some p when Sys.file_exists p -> Some p
  | _ ->
      (* dune runs tests from _build/default/test. *)
      let guess = Filename.concat (Sys.getcwd ()) "../bin/fpgapart.exe" in
      if Sys.file_exists guess then Some guess else None

let with_fleet ?(config = fun c -> c) f =
  match worker_exe () with
  | None -> Alcotest.skip ()
  | Some exe ->
      let path = temp_socket () in
      let cfg =
        config
          (Fleet.Scheduler.default_config ~socket_path:path ~workers:2
             ~worker_exe:exe)
      in
      let ready = Mutex.create () and ready_cond = Condition.create () in
      let is_ready = ref false in
      let on_ready () =
        Mutex.lock ready;
        is_ready := true;
        Condition.broadcast ready_cond;
        Mutex.unlock ready
      in
      let result = ref (Ok ()) in
      let sched =
        Thread.create (fun () -> result := Fleet.Scheduler.run ~on_ready cfg) ()
      in
      Mutex.lock ready;
      while not !is_ready do
        Condition.wait ready_cond ready
      done;
      Mutex.unlock ready;
      let shutdown () =
        (match C.rpc ~socket:path P.Shutdown with Ok _ | Error _ -> ());
        Thread.join sched
      in
      Fun.protect ~finally:shutdown (fun () -> f path);
      match !result with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("scheduler: " ^ e)

let wait_workers_up path n =
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec loop () =
    let up =
      match C.rpc ~socket:path P.Health with
      | Error _ -> 0
      | Ok reply -> (
          match
            Option.bind
              (Option.bind (J.member "health" reply) (J.member "workers_up"))
              J.to_int
          with
          | Some n -> n
          | None -> 0)
    in
    if up >= n then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "only %d/%d workers came up" up n
    else begin
      Thread.delay 0.1;
      loop ()
    end
  in
  loop ()

let fleet_counters path =
  let reply = rpc_ok path P.Fleet_stats in
  Option.get
    (Option.bind
       (Option.bind (J.member "fleet" reply) (J.member "obs"))
       (J.member "counters"))

let counter name counters =
  Option.value ~default:0 (Option.bind (J.member name counters) J.to_int)

let submit_req ?(runs = 1) ?(seed = 1) ?(envelope = P.default_envelope) name =
  P.Submit
    {
      name;
      format = P.Bench;
      netlist = tiny_bench;
      options = Core.Kway.Options.make ~runs ~seed ();
      envelope;
    }

let await path id =
  let r = rpc_ok path (P.Result { job = id; wait = true }) in
  checkb "terminal result" true (J.member "result" r <> None);
  r

let test_fleet_end_to_end () =
  with_fleet (fun path ->
      wait_workers_up path 2;
      (* Miss, compute on a worker, then hit — byte-identical replies
         come free because cached replies re-serialize the same doc. *)
      let r1 = rpc_ok path (submit_req "e2e" ~seed:5) in
      let id1 = int_field "job" r1 in
      ignore (await path id1);
      let r2 = rpc_ok path (submit_req "e2e" ~seed:5) in
      checkb "second submit cached" true
        (Option.bind (J.member "cached" r2) J.to_bool = Some true);
      let c = fleet_counters path in
      checkb "dispatched" true (counter "fleet.dispatched" c >= 1);
      checkb "one hit" true (counter "service.cache_hit" c >= 1))

let test_fleet_portfolio () =
  with_fleet (fun path ->
      wait_workers_up path 2;
      let envelope = { P.tenant = "race"; priority = 0; portfolio = true } in
      let r = rpc_ok path (submit_req "folio" ~seed:31 ~envelope) in
      let id = int_field "job" r in
      ignore (await path id);
      let c = fleet_counters path in
      checkb "raced" true (counter "fleet.portfolio_races" c >= 1);
      (* The portfolio result must not poison the cache: resubmitting
         without portfolio misses (portfolio winners are not cached). *)
      let r2 = rpc_ok path (submit_req "folio" ~seed:31) in
      checkb "portfolio result not cached" true
        (Option.bind (J.member "cached" r2) J.to_bool = Some false);
      ignore (await path (int_field "job" r2)))

let test_fleet_kill_worker_requeues_once () =
  with_fleet (fun path ->
      wait_workers_up path 2;
      (* A job slow enough to catch mid-flight: many runs of the tiny
         circuit are still fast, so use a bigger builtin. *)
      let big =
        match Experiments.Suite.find "s5378" with
        | Some e ->
            Netlist.Bench_format.to_string
              (Lazy.force e.Experiments.Suite.circuit)
        | None -> Alcotest.fail "builtin s5378 missing"
      in
      let submit =
        P.Submit
          {
            name = "victim";
            format = P.Bench;
            netlist = big;
            options = Core.Kway.Options.make ~runs:6 ~seed:3 ();
            envelope = P.default_envelope;
          }
      in
      let r = rpc_ok path submit in
      let id = int_field "job" r in
      (* Find the busy worker's pid from fleet-stats and SIGKILL it. *)
      let rec find_busy tries =
        if tries = 0 then Alcotest.fail "no worker went busy"
        else
          let reply = rpc_ok path P.Fleet_stats in
          let workers =
            match
              Option.bind (J.member "fleet" reply) (J.member "workers")
            with
            | Some (J.List l) -> l
            | _ -> []
          in
          let busy =
            List.find_map
              (fun w ->
                match Option.bind (J.member "state" w) J.to_str with
                | Some "busy" -> Option.bind (J.member "pid" w) J.to_int
                | _ -> None)
              workers
          in
          match busy with
          | Some pid -> pid
          | None ->
              Thread.delay 0.05;
              find_busy (tries - 1)
      in
      let pid = find_busy 100 in
      Unix.kill pid Sys.sigkill;
      (* Exactly one terminal reply, with a real result: the requeue
         ran it on the surviving worker. *)
      ignore (await path id);
      checkb "requeued once" true
        (counter "service.requeues" (fleet_counters path) >= 1);
      (* The respawn happens after the supervisor's backoff, not before
         the job's reply — poll for it. *)
      let deadline = Unix.gettimeofday () +. 15.0 in
      let rec wait_restart () =
        if counter "service.worker_restarts" (fleet_counters path) >= 1 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "worker never respawned"
        else begin
          Thread.delay 0.2;
          wait_restart ()
        end
      in
      wait_restart ())

let test_fleet_disk_cache_restart () =
  match worker_exe () with
  | None -> Alcotest.skip ()
  | Some _ ->
      let dir = temp_dir () in
      let config c = { c with Fleet.Scheduler.cache_dir = Some dir } in
      with_fleet ~config (fun path ->
          wait_workers_up path 2;
          let r = rpc_ok path (submit_req "persist" ~seed:77) in
          ignore (await path (int_field "job" r)));
      (* Same cache dir, fresh fleet: the first submission must be
         served from disk without touching a worker. *)
      with_fleet ~config (fun path ->
          wait_workers_up path 2;
          let r = rpc_ok path (submit_req "persist" ~seed:77) in
          checkb "served from disk" true
            (Option.bind (J.member "cached" r) J.to_bool = Some true);
          let c = fleet_counters path in
          checkb "disk hit counted" true
            (counter "fleet.disk_cache_hit" c >= 1))

let () =
  Random.self_init ();
  Alcotest.run "fleet"
    [
      ( "fair queue",
        [
          Alcotest.test_case "weighted interleave" `Quick
            test_fair_queue_weights;
          Alcotest.test_case "priorities and position" `Quick
            test_fair_queue_priorities;
          Alcotest.test_case "per-tenant backpressure" `Quick
            test_fair_queue_backpressure;
          QCheck_alcotest.to_alcotest test_fair_queue_conservation;
        ] );
      ( "disk cache",
        [
          Alcotest.test_case "roundtrip and reload" `Quick
            test_disk_cache_roundtrip;
          Alcotest.test_case "corrupt record skipped" `Quick
            test_disk_cache_corrupt_record_skipped;
          Alcotest.test_case "torn tail recovery" `Quick
            test_disk_cache_torn_tail;
        ] );
      ( "client retry",
        [
          Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "connection refused retries" `Quick
            test_retry_connection_refused;
        ] );
      ( "stale socket",
        [ Alcotest.test_case "bind probe" `Quick test_stale_socket_bind ] );
      ( "batch",
        [
          Alcotest.test_case "submit-batch roundtrip" `Slow
            test_submit_batch_roundtrip;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "end to end with cache" `Slow
            test_fleet_end_to_end;
          Alcotest.test_case "portfolio racing" `Slow test_fleet_portfolio;
          Alcotest.test_case "SIGKILL worker requeues once" `Slow
            test_fleet_kill_worker_requeues_once;
          Alcotest.test_case "disk cache survives restart" `Slow
            test_fleet_disk_cache_restart;
        ] );
    ]
