(* Tests for the domain pool and for the tentpole guarantee of the
   parallel multi-start search: the partition, the telemetry event stream
   and every counter are byte-identical across [jobs] settings. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Parallel.Pool                                                      *)
(* ------------------------------------------------------------------ *)

let test_pool_index_order () =
  let squares = Parallel.Pool.run ~jobs:4 10 (fun i -> i * i) in
  Alcotest.(check (array int))
    "results land at their index"
    (Array.init 10 (fun i -> i * i))
    squares;
  let chunked = Parallel.Pool.run ~chunk:3 ~jobs:2 11 (fun i -> i + 100) in
  Alcotest.(check (array int))
    "chunked dispatch preserves index order"
    (Array.init 11 (fun i -> i + 100))
    chunked

let test_pool_edge_cases () =
  checki "n = 0 yields an empty array" 0
    (Array.length (Parallel.Pool.run ~jobs:4 0 (fun i -> i)));
  Alcotest.(check (array int))
    "more jobs than work" [| 7 |]
    (Parallel.Pool.run ~jobs:8 1 (fun _ -> 7));
  Alcotest.(check (array int))
    "jobs = 1 runs inline" [| 0; 1; 2 |]
    (Parallel.Pool.run ~jobs:1 3 (fun i -> i))

let test_pool_exception () =
  (* All indices still execute / join; the exception re-raised afterwards
     is the one from the smallest failing index, deterministically. *)
  Alcotest.check_raises "smallest failing index wins" (Failure "boom3")
    (fun () ->
      ignore
        (Parallel.Pool.run ~jobs:4 10 (fun i ->
             if i = 3 || i = 7 then failwith (Printf.sprintf "boom%d" i)
             else i)))

let test_pool_nested () =
  let sums =
    Parallel.Pool.run ~jobs:2 4 (fun i ->
        Array.fold_left ( + ) 0
          (Parallel.Pool.run ~jobs:2 3 (fun j -> (i * 10) + j)))
  in
  Alcotest.(check (array int))
    "nested pools compose"
    [| 3; 33; 63; 93 |]
    sums

let test_jobs_from_env () =
  let var = "FPGAPART_TEST_JOBS" in
  Unix.putenv var "4";
  checki "well-formed value" 4 (Parallel.Pool.jobs_from_env ~var ());
  Unix.putenv var "garbage";
  checki "malformed falls back to 1" 1 (Parallel.Pool.jobs_from_env ~var ());
  Unix.putenv var "0";
  checki "non-positive falls back to 1" 1 (Parallel.Pool.jobs_from_env ~var ());
  checki "unset falls back to 1" 1
    (Parallel.Pool.jobs_from_env ~var:"FPGAPART_SURELY_UNSET_VAR" ())

(* ------------------------------------------------------------------ *)
(* jobs-independence of Kway.partition                                *)
(* ------------------------------------------------------------------ *)

let mapped_hypergraph c =
  Techmap.Mapper.to_hypergraph (Techmap.Mapper.map c)

(* Everything except the two [_secs] timing fields. *)
let comparable (r : Core.Kway.result) =
  ( r.Core.Kway.parts,
    r.Core.Kway.summary,
    r.Core.Kway.replicated_cells,
    r.Core.Kway.total_cells,
    r.Core.Kway.runs,
    r.Core.Kway.feasible_runs )

let partition_with_snapshot ~jobs ~runs h =
  let options =
    Core.Kway.Options.make ~runs ~fm_attempts:2 ~replication:(`Functional 0)
      ~jobs ()
  in
  let obs = Obs.create () in
  let r =
    match Core.Kway.partition ~obs ~options ~library:Fpga.Library.xc3000 h with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  (match Core.Kway.check h r with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("unsound: " ^ e));
  let scrubbed =
    Obs.Json.to_string
      (Obs.Snapshot.scrub_elapsed (Obs.Snapshot.to_json (Obs.snapshot obs)))
  in
  (r, scrubbed)

let test_kway_jobs_independent () =
  (* The acceptance gate of the parallel search: jobs=4 must reproduce the
     jobs=1 partition and its scrubbed telemetry byte for byte. The 16-bit
     multiplier needs several devices, so runs exercise splits, device
     attempts and F-M restarts. *)
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:16 ()) in
  let r1, snap1 = partition_with_snapshot ~jobs:1 ~runs:3 h in
  let r4, snap4 = partition_with_snapshot ~jobs:4 ~runs:3 h in
  checkb "identical result (jobs=4 vs jobs=1)" true
    (comparable r1 = comparable r4);
  checks "byte-identical scrubbed telemetry" snap1 snap4

let test_kway_attempt_level_parallelism () =
  (* runs < jobs routes the surplus domains to the per-split fm_attempts
     restarts; the pre-drawn RNG streams keep that path deterministic
     too. *)
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:16 ()) in
  let r1, snap1 = partition_with_snapshot ~jobs:1 ~runs:1 h in
  let r4, snap4 = partition_with_snapshot ~jobs:4 ~runs:1 h in
  checkb "identical result (attempt-level jobs)" true
    (comparable r1 = comparable r4);
  checks "byte-identical scrubbed telemetry" snap1 snap4

let prop_partition_independent_of_jobs =
  QCheck.Test.make
    ~name:"partition independent of jobs on generated circuits" ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Netlist.Rng.create seed in
      let c =
        Netlist.Generator.random ~rng ~num_inputs:(8 + (seed mod 7))
          ~num_gates:(120 + (seed mod 100))
          ~num_dff:(seed mod 9)
          ~num_outputs:(6 + (seed mod 5))
          ()
      in
      let h = mapped_hypergraph c in
      let go jobs =
        let options =
          Core.Kway.Options.make ~runs:2 ~fm_attempts:2 ~seed:(seed + 1)
            ~replication:(`Functional 0) ~jobs ()
        in
        Core.Kway.partition ~options ~library:Fpga.Library.xc3000 h
      in
      match (go 1, go 3) with
      | Error a, Error b -> a = b
      | Ok a, Ok b ->
          comparable a = comparable b
          || QCheck.Test.fail_report "jobs changed the partition"
      | Ok _, Error _ | Error _, Ok _ ->
          QCheck.Test.fail_report "jobs changed feasibility")

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "index order" `Quick test_pool_index_order;
          Alcotest.test_case "edge cases" `Quick test_pool_edge_cases;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "nested pools" `Quick test_pool_nested;
          Alcotest.test_case "jobs_from_env" `Quick test_jobs_from_env;
        ] );
      ( "kway-determinism",
        [
          Alcotest.test_case "jobs=4 equals jobs=1" `Slow
            test_kway_jobs_independent;
          Alcotest.test_case "attempt-level parallelism" `Slow
            test_kway_attempt_level_parallelism;
          QCheck_alcotest.to_alcotest prop_partition_independent_of_jobs;
        ] );
    ]
