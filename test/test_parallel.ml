(* Tests for the domain pool and for the tentpole guarantee of the
   parallel multi-start search: the partition, the telemetry event stream
   and every counter are byte-identical across [jobs] settings. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Parallel.Pool                                                      *)
(* ------------------------------------------------------------------ *)

let test_pool_index_order () =
  let squares = Parallel.Pool.run ~jobs:4 10 (fun i -> i * i) in
  Alcotest.(check (array int))
    "results land at their index"
    (Array.init 10 (fun i -> i * i))
    squares;
  let chunked = Parallel.Pool.run ~chunk:3 ~jobs:2 11 (fun i -> i + 100) in
  Alcotest.(check (array int))
    "chunked dispatch preserves index order"
    (Array.init 11 (fun i -> i + 100))
    chunked

let test_pool_edge_cases () =
  checki "n = 0 yields an empty array" 0
    (Array.length (Parallel.Pool.run ~jobs:4 0 (fun i -> i)));
  Alcotest.(check (array int))
    "more jobs than work" [| 7 |]
    (Parallel.Pool.run ~jobs:8 1 (fun _ -> 7));
  Alcotest.(check (array int))
    "jobs = 1 runs inline" [| 0; 1; 2 |]
    (Parallel.Pool.run ~jobs:1 3 (fun i -> i))

let test_pool_exception () =
  (* All indices still execute / join; the exception re-raised afterwards
     is the one from the smallest failing index, deterministically. *)
  Alcotest.check_raises "smallest failing index wins" (Failure "boom3")
    (fun () ->
      ignore
        (Parallel.Pool.run ~jobs:4 10 (fun i ->
             if i = 3 || i = 7 then failwith (Printf.sprintf "boom%d" i)
             else i)))

let test_pool_nested () =
  let sums =
    Parallel.Pool.run ~jobs:2 4 (fun i ->
        Array.fold_left ( + ) 0
          (Parallel.Pool.run ~jobs:2 3 (fun j -> (i * 10) + j)))
  in
  Alcotest.(check (array int))
    "nested pools compose"
    [| 3; 33; 63; 93 |]
    sums

let test_worker_id () =
  checki "calling domain is worker 0" 0 (Parallel.Pool.worker_id ());
  (* Items must take long enough that one worker cannot drain the whole
     queue before the others finish spawning. *)
  let ids =
    Parallel.Pool.run ~jobs:4 64 (fun _ ->
        Unix.sleepf 0.002;
        Parallel.Pool.worker_id ())
  in
  Array.iter
    (fun id -> checkb "spawned workers are 1..jobs" true (id >= 1 && id <= 4))
    ids;
  let distinct = List.sort_uniq compare (Array.to_list ids) in
  checkb "more than one worker participated" true (List.length distinct > 1);
  checki "jobs=1 stays on the calling domain" 0
    (Parallel.Pool.run ~jobs:1 1 (fun _ -> Parallel.Pool.worker_id ())).(0);
  checki "worker id restored after the pool" 0 (Parallel.Pool.worker_id ())

let test_jobs_from_env () =
  let var = "FPGAPART_TEST_JOBS" in
  Unix.putenv var "4";
  checki "well-formed value" 4 (Parallel.Pool.jobs_from_env ~var ());
  Unix.putenv var "garbage";
  checki "malformed falls back to 1" 1 (Parallel.Pool.jobs_from_env ~var ());
  Unix.putenv var "0";
  checki "non-positive falls back to 1" 1 (Parallel.Pool.jobs_from_env ~var ());
  checki "unset falls back to 1" 1
    (Parallel.Pool.jobs_from_env ~var:"FPGAPART_SURELY_UNSET_VAR" ())

(* ------------------------------------------------------------------ *)
(* jobs-independence of Kway.partition                                *)
(* ------------------------------------------------------------------ *)

let mapped_hypergraph c =
  Techmap.Mapper.to_hypergraph (Techmap.Mapper.map c)

(* Everything except the two [_secs] timing fields. *)
let comparable (r : Core.Kway.result) =
  ( r.Core.Kway.parts,
    r.Core.Kway.summary,
    r.Core.Kway.replicated_cells,
    r.Core.Kway.total_cells,
    r.Core.Kway.runs,
    r.Core.Kway.feasible_runs )

let partition_with_snapshot ~jobs ~runs h =
  let options =
    Core.Kway.Options.make ~runs ~fm_attempts:2 ~replication:(`Functional 0)
      ~jobs ()
  in
  let obs = Obs.create () in
  let r =
    match Core.Kway.partition ~obs ~options ~library:Fpga.Library.xc3000 h with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  (match Core.Kway.check h r with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("unsound: " ^ e));
  let scrubbed =
    Obs.Json.to_string
      (Obs.Snapshot.scrub_elapsed (Obs.Snapshot.to_json (Obs.snapshot obs)))
  in
  (r, scrubbed)

let test_kway_jobs_independent () =
  (* The acceptance gate of the parallel search: jobs=4 must reproduce the
     jobs=1 partition and its scrubbed telemetry byte for byte. The 16-bit
     multiplier needs several devices, so runs exercise splits, device
     attempts and F-M restarts. *)
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:16 ()) in
  let r1, snap1 = partition_with_snapshot ~jobs:1 ~runs:3 h in
  let r4, snap4 = partition_with_snapshot ~jobs:4 ~runs:3 h in
  checkb "identical result (jobs=4 vs jobs=1)" true
    (comparable r1 = comparable r4);
  checks "byte-identical scrubbed telemetry" snap1 snap4

let test_kway_attempt_level_parallelism () =
  (* runs < jobs routes the surplus domains to the per-split fm_attempts
     restarts; the pre-drawn RNG streams keep that path deterministic
     too. *)
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:16 ()) in
  let r1, snap1 = partition_with_snapshot ~jobs:1 ~runs:1 h in
  let r4, snap4 = partition_with_snapshot ~jobs:4 ~runs:1 h in
  checkb "identical result (attempt-level jobs)" true
    (comparable r1 = comparable r4);
  checks "byte-identical scrubbed telemetry" snap1 snap4

let test_traced_partition_lanes () =
  (* A traced jobs=4 partition: every multi-start run span must sit on a
     spawned worker's track (tid 1..jobs), the F-M passes must appear as
     spans, and the scrubbed stats must stay byte-identical to a traced
     jobs=1 run — the trace is an artifact, never an influence. *)
  let h = mapped_hypergraph (Netlist.Generator.multiplier ~bits:16 ()) in
  let jobs = 4 in
  let go jobs =
    let options = Core.Kway.Options.make ~runs:8 ~fm_attempts:2 ~jobs () in
    let obs = Obs.create ~trace:true () in
    (match Core.Kway.partition ~obs ~options ~library:Fpga.Library.xc3000 h with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e);
    let scrubbed =
      Obs.Json.to_string
        (Obs.Snapshot.scrub_elapsed (Obs.Snapshot.to_json (Obs.snapshot obs)))
    in
    (Obs.Trace.spans obs, scrubbed)
  in
  let spans, snap4 = go jobs in
  let run_spans =
    List.filter
      (fun s ->
        String.length s.Obs.Trace.span_name >= 3
        && String.sub s.Obs.Trace.span_name 0 3 = "run")
      spans
  in
  checkb "has run spans" true (run_spans <> []);
  List.iter
    (fun s ->
      checkb
        (s.Obs.Trace.span_name ^ " on a worker track")
        true
        (s.Obs.Trace.span_tid >= 1 && s.Obs.Trace.span_tid <= jobs))
    run_spans;
  let tids =
    List.sort_uniq compare (List.map (fun s -> s.Obs.Trace.span_tid) run_spans)
  in
  checkb "runs spread over more than one track" true (List.length tids > 1);
  checkb "one pid per multi-start run" true
    (List.length
       (List.sort_uniq compare
          (List.map (fun s -> s.Obs.Trace.span_pid) run_spans))
    = 8);
  checkb "F-M passes appear as spans" true
    (List.exists
       (fun s ->
         List.exists
           (fun seg ->
             String.length seg >= 4 && String.sub seg 0 4 = "pass")
           (String.split_on_char '/' s.Obs.Trace.span_name))
       spans);
  let _, snap1 = go 1 in
  checks "scrubbed stats byte-identical to traced jobs=1" snap1 snap4

let prop_partition_independent_of_jobs =
  QCheck.Test.make
    ~name:"partition independent of jobs on generated circuits" ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Netlist.Rng.create seed in
      let c =
        Netlist.Generator.random ~rng ~num_inputs:(8 + (seed mod 7))
          ~num_gates:(120 + (seed mod 100))
          ~num_dff:(seed mod 9)
          ~num_outputs:(6 + (seed mod 5))
          ()
      in
      let h = mapped_hypergraph c in
      let go jobs =
        let options =
          Core.Kway.Options.make ~runs:2 ~fm_attempts:2 ~seed:(seed + 1)
            ~replication:(`Functional 0) ~jobs ()
        in
        Core.Kway.partition ~options ~library:Fpga.Library.xc3000 h
      in
      match (go 1, go 3) with
      | Error a, Error b -> a = b
      | Ok a, Ok b ->
          comparable a = comparable b
          || QCheck.Test.fail_report "jobs changed the partition"
      | Ok _, Error _ | Error _, Ok _ ->
          QCheck.Test.fail_report "jobs changed feasibility")

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "index order" `Quick test_pool_index_order;
          Alcotest.test_case "edge cases" `Quick test_pool_edge_cases;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "nested pools" `Quick test_pool_nested;
          Alcotest.test_case "worker ids" `Quick test_worker_id;
          Alcotest.test_case "jobs_from_env" `Quick test_jobs_from_env;
        ] );
      ( "kway-determinism",
        [
          Alcotest.test_case "jobs=4 equals jobs=1" `Slow
            test_kway_jobs_independent;
          Alcotest.test_case "attempt-level parallelism" `Slow
            test_kway_attempt_level_parallelism;
          Alcotest.test_case "traced partition lanes" `Slow
            test_traced_partition_lanes;
          QCheck_alcotest.to_alcotest prop_partition_independent_of_jobs;
        ] );
    ]
